"""Continuous flow telemetry on the simulated clock.

Everything else in :mod:`repro.obs` is one-shot: a trace and a metrics
snapshot per batch run.  This module is the *standing* stream the
ROADMAP's online re-optimization and adversarial-detection items
consume: a :class:`TelemetryCollector` samples per-switch, per-port,
and per-flow counters (packets, flow-mod rates, TCAM occupancy from
:mod:`repro.tables`, install latency from scheduler batch spans) on a
configurable virtual-time cadence, in the style of NetFlow-for-OpenFlow
and sFlow network monitors.

Design rules, shared with the tracer and the metrics registry:

* **Deterministic.**  Every timestamp comes from a virtual clock; the
  sampling cadence is arithmetic on those timestamps (ticks at exact
  multiples of ``interval_ms``), so two same-seed runs produce
  byte-identical telemetry JSONL streams.
* **Observation only.**  The collector *reads* attached components --
  switch table stacks, network flows, executor clocks -- and its push
  hooks (`observe_install`, `observe_batch`, ...) record into private
  buffers.  Nothing it does touches a clock, an RNG, a DAG, or a score
  database, and ``verify_noop_instrumentation`` proves schedules, op
  counts, and TangoDB contents are byte-identical with a collector
  attached versus detached.
* **Null twin.**  Instrumented components default to
  :data:`NULL_TELEMETRY`, whose methods are constant-time no-ops, so
  telemetry off costs one attribute check on the hot paths.

Flow-cache sampling follows NetFlow-for-OpenFlow semantics: per-flow
records accumulate packets/updates and are exported when the *active*
timeout elapses (long-lived flows emit periodic records) or when the
*inactive* timeout expires (idle flows are evicted and exported), with
an optional deterministic 1-in-N sampling rate on updates.

Usage::

    collector = TelemetryCollector(interval_ms=5.0)
    collector.watch_network(network)
    executor = network.executor(telemetry=collector)
    scheduler = BasicTangoScheduler(executor, telemetry=collector)
    scheduler.schedule(dag)
    write_telemetry_jsonl(collector.samples, "run.telemetry.jsonl")
"""

from __future__ import annotations

import json
from bisect import insort
from collections import deque
from dataclasses import dataclass
from typing import (
    IO,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

PathOrFile = Union[str, "IO[str]"]

_JSON_KWARGS = {"sort_keys": True, "separators": (",", ":")}


@dataclass(frozen=True)
class TelemetrySample:
    """One telemetry observation at a point in virtual time.

    ``series`` names the measured quantity (``"switch.occupancy"``,
    ``"executor.install_ms"``, ...), ``source`` the component it was
    measured on (a switch name, a scheduler class, ...), and ``labels``
    carries any further dimensions (port, command, layer).
    """

    t_ms: float
    series: str
    source: str
    value: float
    labels: Tuple[Tuple[str, str], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t_ms": self.t_ms,
            "series": self.series,
            "source": self.source,
            "value": self.value,
            "labels": {k: v for k, v in self.labels},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TelemetrySample":
        return cls(
            t_ms=float(payload["t_ms"]),
            series=str(payload["series"]),
            source=str(payload.get("source", "")),
            value=float(payload["value"]),
            labels=tuple(
                sorted((str(k), str(v)) for k, v in (payload.get("labels") or {}).items())
            ),
        )


def _labelset(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class SlidingWindow:
    """A time-bounded ring buffer of (t_ms, value) samples.

    Samples older than ``window_ms`` behind the newest observation (or
    an explicit ``now_ms`` passed to the aggregate readers) are evicted
    lazily.  All aggregates are pure functions of the retained samples,
    so they are deterministic for a deterministic input stream.
    """

    __slots__ = ("window_ms", "capacity", "_samples")

    def __init__(self, window_ms: float, capacity: int = 4096) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.window_ms = float(window_ms)
        self.capacity = capacity
        self._samples: deque = deque(maxlen=capacity)

    def observe(self, t_ms: float, value: float) -> None:
        self._samples.append((t_ms, value))
        self._trim(t_ms)

    def _trim(self, now_ms: float) -> None:
        floor = now_ms - self.window_ms
        samples = self._samples
        while samples and samples[0][0] < floor:
            samples.popleft()

    # -- aggregates -------------------------------------------------------------
    def count(self, now_ms: Optional[float] = None) -> int:
        if now_ms is not None:
            self._trim(now_ms)
        return len(self._samples)

    def values(self, now_ms: Optional[float] = None) -> List[float]:
        if now_ms is not None:
            self._trim(now_ms)
        return [value for _, value in self._samples]

    def mean(self, now_ms: Optional[float] = None) -> Optional[float]:
        values = self.values(now_ms)
        return sum(values) / len(values) if values else None

    def last(self) -> Optional[float]:
        return self._samples[-1][1] if self._samples else None

    def percentile(self, p: float, now_ms: Optional[float] = None) -> Optional[float]:
        """Nearest-rank percentile (p in [0, 100]) of retained values."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        values = sorted(self.values(now_ms))
        if not values:
            return None
        rank = max(0, min(len(values) - 1, int((p / 100.0) * len(values) + 0.5) - 1))
        return values[rank]

    def rate_per_ms(self, now_ms: Optional[float] = None) -> float:
        """Counter rate: (last - first) / elapsed over the window.

        For cumulative series (flow-mod totals, packet counts).  Returns
        0.0 with fewer than two samples or zero elapsed time.
        """
        if now_ms is not None:
            self._trim(now_ms)
        if len(self._samples) < 2:
            return 0.0
        (t0, v0), (t1, v1) = self._samples[0], self._samples[-1]
        elapsed = t1 - t0
        return (v1 - v0) / elapsed if elapsed > 0 else 0.0

    def churn(self, now_ms: Optional[float] = None) -> float:
        """Sum of absolute sample-to-sample deltas over the window.

        The occupancy-churn signal: a table whose occupancy oscillates
        (evict/insert storms) churns even when its mean stays flat.
        """
        if now_ms is not None:
            self._trim(now_ms)
        total = 0.0
        previous: Optional[float] = None
        for _, value in self._samples:
            if previous is not None:
                total += abs(value - previous)
            previous = value
        return total

    def violation_fraction(
        self, threshold: float, now_ms: Optional[float] = None
    ) -> Optional[float]:
        """Fraction of retained values strictly above ``threshold``."""
        values = self.values(now_ms)
        if not values:
            return None
        return sum(1 for value in values if value > threshold) / len(values)

    def __len__(self) -> int:
        return len(self._samples)


# -- flow-cache sampling (NetFlow-for-OpenFlow semantics) ------------------------
@dataclass(frozen=True)
class FlowCacheConfig:
    """Flow-cache sampling knobs.

    Args:
        active_timeout_ms: a flow continuously updated for this long is
            exported (and its counters reset) -- long-lived flows emit
            periodic records instead of one giant one.
        inactive_timeout_ms: a flow idle for this long is expired and
            exported.
        sampling_rate: deterministic 1-in-N update sampling; every Nth
            update (per collector, in arrival order) lands in the cache.
            1 records every update.
    """

    active_timeout_ms: float = 1000.0
    inactive_timeout_ms: float = 250.0
    sampling_rate: int = 1

    def __post_init__(self) -> None:
        if self.active_timeout_ms <= 0 or self.inactive_timeout_ms <= 0:
            raise ValueError("flow-cache timeouts must be positive")
        if self.sampling_rate < 1:
            raise ValueError("sampling_rate must be >= 1")


@dataclass
class FlowCacheEntry:
    """Accumulated counters for one tracked flow."""

    key: str
    source: str
    first_ms: float
    last_ms: float
    packets: int = 0
    updates: int = 0


@dataclass(frozen=True)
class FlowRecord:
    """One exported flow record (the NetFlow analogue)."""

    key: str
    source: str
    start_ms: float
    end_ms: float
    packets: int
    updates: int
    reason: str  # "active" | "inactive" | "flush"


class FlowCache:
    """Deterministic flow cache with active/inactive timeout export."""

    def __init__(self, config: Optional[FlowCacheConfig] = None) -> None:
        self.config = config if config is not None else FlowCacheConfig()
        self._entries: Dict[Tuple[str, str], FlowCacheEntry] = {}
        self._seen = 0
        self.sampled_out = 0
        self.exported: int = 0

    def __len__(self) -> int:
        return len(self._entries)

    def record(
        self, source: str, key: str, t_ms: float, packets: int = 1
    ) -> Optional[FlowRecord]:
        """Account one flow update; returns an export if a timeout fired."""
        self._seen += 1
        if self.config.sampling_rate > 1 and (
            self._seen % self.config.sampling_rate
        ) != 0:
            self.sampled_out += 1
            return None
        cache_key = (source, key)
        entry = self._entries.get(cache_key)
        if entry is None:
            entry = self._entries[cache_key] = FlowCacheEntry(
                key=key, source=source, first_ms=t_ms, last_ms=t_ms
            )
        entry.packets += packets
        entry.updates += 1
        entry.last_ms = t_ms
        if t_ms - entry.first_ms >= self.config.active_timeout_ms:
            return self._export(cache_key, t_ms, "active")
        return None

    def _export(
        self, cache_key: Tuple[str, str], t_ms: float, reason: str
    ) -> FlowRecord:
        entry = self._entries.pop(cache_key)
        self.exported += 1
        return FlowRecord(
            key=entry.key,
            source=entry.source,
            start_ms=entry.first_ms,
            end_ms=t_ms,
            packets=entry.packets,
            updates=entry.updates,
            reason=reason,
        )

    def expire(self, now_ms: float) -> List[FlowRecord]:
        """Export every flow idle past the inactive timeout."""
        floor = now_ms - self.config.inactive_timeout_ms
        stale = sorted(
            cache_key
            for cache_key, entry in self._entries.items()
            if entry.last_ms < floor
        )
        return [self._export(cache_key, now_ms, "inactive") for cache_key in stale]

    def flush(self, now_ms: float) -> List[FlowRecord]:
        """Export everything still resident (end of run)."""
        keys = sorted(self._entries)
        return [self._export(cache_key, now_ms, "flush") for cache_key in keys]


# -- the collector ----------------------------------------------------------------
#: Default ring-buffer capacity for retained samples.
DEFAULT_SAMPLE_CAPACITY = 262144


class TelemetryCollector:
    """Samples attached components on a virtual-time cadence.

    The collector has two input paths:

    * **Pull**: :meth:`watch_switch` / :meth:`watch_network` register
      read-only probes that run at every cadence tick
      (:meth:`sample`), emitting occupancy, flow-mod, shift, packet,
      and per-port flow-count series.
    * **Push**: instrumented components call :meth:`observe_install`,
      :meth:`observe_batch`, :meth:`observe_probe`, and
      :meth:`observe_flow` as work happens; pushes also advance the
      cadence (ticks fire for every elapsed ``interval_ms`` boundary),
      so scheduler runs that never touch a :class:`~repro.sim.events.Simulator`
      still sample on schedule.

    Args:
        interval_ms: cadence between samples on the virtual clock.
        window_ms: default sliding-window length for aggregates.
        flow_cache: NetFlow-style flow-cache sampling configuration.
        capacity: retained-sample ring buffer size (oldest drop first).
    """

    enabled = True

    def __init__(
        self,
        interval_ms: float = 10.0,
        window_ms: float = 100.0,
        flow_cache: Optional[FlowCacheConfig] = None,
        capacity: int = DEFAULT_SAMPLE_CAPACITY,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.interval_ms = float(interval_ms)
        self.window_ms = float(window_ms)
        self.capacity = capacity
        self._samples: deque = deque(maxlen=capacity)
        self.dropped = 0
        self._probes: List[Tuple[str, Callable[[float], List[TelemetrySample]]]] = []
        self._windows: Dict[Tuple[str, str], SlidingWindow] = {}
        self._policies: List[Any] = []
        self.flow_cache = FlowCache(flow_cache)
        self._next_tick_ms: Optional[float] = None
        self.ticks = 0

    # -- recording --------------------------------------------------------------
    @property
    def samples(self) -> List[TelemetrySample]:
        """Retained samples in emission order (bounded by capacity)."""
        return list(self._samples)

    def window(self, series: str, source: str = "") -> SlidingWindow:
        """The sliding window aggregating ``(series, source)`` samples."""
        key = (series, source)
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = SlidingWindow(self.window_ms)
        return window

    def series_names(self) -> List[str]:
        """Sorted distinct series names with at least one window."""
        return sorted({series for series, _ in self._windows})

    def emit(
        self,
        t_ms: float,
        series: str,
        value: float,
        source: str = "",
        **labels: Any,
    ) -> TelemetrySample:
        """Record one sample, feed its window, and notify policies."""
        sample = TelemetrySample(
            t_ms=float(t_ms),
            series=series,
            source=source,
            value=float(value),
            labels=_labelset(labels),
        )
        if len(self._samples) == self.capacity:
            self.dropped += 1
        self._samples.append(sample)
        self.window(series, source).observe(sample.t_ms, sample.value)
        for policy in self._policies:
            policy.ingest(sample)
        return sample

    # -- policies ---------------------------------------------------------------
    def add_policy(self, policy: Any) -> Any:
        """Attach an alerting/drift policy (``ingest``/``evaluate`` duck type).

        Policies see every sample as it is emitted and are evaluated at
        each cadence tick; their alerts carry the tick's deterministic
        virtual timestamp.
        """
        self._policies.append(policy)
        return policy

    @property
    def alerts(self) -> List[Any]:
        """All alerts raised by attached policies, in raise order."""
        merged: List[Any] = []
        for policy in self._policies:
            merged.extend(getattr(policy, "alerts", ()))
        merged.sort(key=lambda alert: (alert.t_ms, alert.name))
        return merged

    # -- pull probes -------------------------------------------------------------
    def watch(
        self, name: str, probe: Callable[[float], List[TelemetrySample]]
    ) -> None:
        """Register a raw pull probe run at every cadence tick."""
        self._probes.append((name, probe))

    def watch_switch(self, name: str, switch: Any) -> None:
        """Sample a simulated switch's tables and operation counters.

        Emits per tick: total occupancy, per-layer occupancy (and the
        occupancy *ratio* for bounded layers), cumulative flow-mod and
        shift counters, and per-layer packet counts.  All reads are
        pure; the switch is never mutated.
        """

        def probe(t_ms: float) -> List[TelemetrySample]:
            emitted: List[TelemetrySample] = []
            tables = switch.tables
            stats = switch.stats
            emitted.append(
                self.emit(t_ms, "switch.occupancy", len(tables), source=name)
            )
            snapshot = occupancy_snapshot(tables)
            for layer in snapshot["layers"]:
                emitted.append(
                    self.emit(
                        t_ms,
                        "switch.layer_occupancy",
                        layer["entries"],
                        source=name,
                        layer=layer["name"],
                    )
                )
                if layer["ratio"] is not None:
                    emitted.append(
                        self.emit(
                            t_ms,
                            "switch.occupancy_ratio",
                            layer["ratio"],
                            source=name,
                            layer=layer["name"],
                        )
                    )
            emitted.append(
                self.emit(
                    t_ms,
                    "switch.flow_mods",
                    stats.adds + stats.mods + stats.dels,
                    source=name,
                )
            )
            emitted.append(
                self.emit(t_ms, "switch.shifts", stats.total_shifts, source=name)
            )
            emitted.append(
                self.emit(
                    t_ms,
                    "switch.packets",
                    sum(stats.packets_by_layer) + stats.packets_to_controller,
                    source=name,
                )
            )
            return emitted

        self.watch(f"switch:{name}", probe)

    def watch_network(self, network: Any) -> None:
        """Watch every switch in an emulated network, plus per-port flows.

        The per-port series counts tracked flows whose path crosses each
        (switch, port) -- the standing per-port utilisation signal the
        TE re-optimization loop will consume.
        """
        for name in sorted(network.switches):
            self.watch_switch(name, network.switches[name])

        def port_probe(t_ms: float) -> List[TelemetrySample]:
            emitted: List[TelemetrySample] = []
            port_flows: Dict[Tuple[str, int], int] = {}
            for flow_id in sorted(network.flows):
                flow = network.flows[flow_id]
                path = flow.path
                for index, switch in enumerate(path):
                    if index == len(path) - 1:
                        port = network.LOCAL_PORT
                    else:
                        port = network.port_to(switch, path[index + 1])
                    port_flows[(switch, port)] = port_flows.get((switch, port), 0) + 1
            for (switch, port), count in sorted(port_flows.items()):
                emitted.append(
                    self.emit(
                        t_ms, "port.flows", count, source=switch, port=str(port)
                    )
                )
            return emitted

        self.watch("network:ports", port_probe)

    # -- push hooks (instrumented components) -------------------------------------
    def observe_install(
        self, switch: str, command: str, started_ms: float, finished_ms: float
    ) -> None:
        """One executed flow-mod: install latency + per-switch op counts."""
        self.emit(
            finished_ms,
            "executor.install_ms",
            finished_ms - started_ms,
            source=switch,
            command=command,
        )
        record = self.flow_cache.record(switch, command, finished_ms)
        if record is not None:
            self._emit_flow_record(record)
        self._tick_to(finished_ms)

    def observe_batch(
        self,
        scheduler: str,
        pattern: str,
        started_ms: float,
        finished_ms: float,
        size: int,
        deadline_misses: int = 0,
    ) -> None:
        """One scheduler batch span."""
        self.emit(
            finished_ms,
            "scheduler.batch_ms",
            finished_ms - started_ms,
            source=scheduler,
            pattern=pattern,
        )
        self.emit(finished_ms, "scheduler.batch_size", size, source=scheduler)
        if deadline_misses:
            self.emit(
                finished_ms,
                "scheduler.deadline_misses",
                deadline_misses,
                source=scheduler,
            )
        self._tick_to(finished_ms)

    def observe_probe(self, switch: str, op: str, t_ms: float, rtt_ms: float) -> None:
        """One probe RTT (the signature stream the drift feed watches)."""
        self.emit(t_ms, "probe.rtt_ms", rtt_ms, source=switch, op=op)
        self._tick_to(t_ms)

    def observe_flow(
        self, source: str, key: str, t_ms: float, packets: int = 1
    ) -> None:
        """One per-flow update (packets forwarded, rule hit, ...)."""
        record = self.flow_cache.record(source, key, t_ms, packets=packets)
        if record is not None:
            self._emit_flow_record(record)
        self._tick_to(t_ms)

    def _emit_flow_record(self, record: FlowRecord) -> None:
        self.emit(
            record.end_ms,
            "flow.export",
            record.packets,
            source=record.source,
            key=record.key,
            reason=record.reason,
            updates=str(record.updates),
        )

    # -- cadence -----------------------------------------------------------------
    def _tick_to(self, now_ms: float) -> None:
        """Fire every elapsed cadence tick up to ``now_ms``."""
        if self._next_tick_ms is None:
            base = (now_ms // self.interval_ms) * self.interval_ms
            self._next_tick_ms = base + self.interval_ms
            self.sample(base)
            return
        while self._next_tick_ms <= now_ms:
            tick = self._next_tick_ms
            self._next_tick_ms = tick + self.interval_ms
            self.sample(tick)

    def sample(self, now_ms: float) -> int:
        """Take one cadence sample: run pull probes, expire the flow
        cache, and evaluate attached policies.  Returns the number of
        samples emitted."""
        before = len(self._samples) + self.dropped
        self.ticks += 1
        for _, probe in self._probes:
            probe(now_ms)
        for record in self.flow_cache.expire(now_ms):
            self._emit_flow_record(record)
        for policy in self._policies:
            policy.evaluate(now_ms)
        return len(self._samples) + self.dropped - before

    def finish(self, now_ms: float) -> None:
        """End-of-run: flush the flow cache and run one final tick."""
        for record in self.flow_cache.flush(now_ms):
            self._emit_flow_record(record)
        self.sample(now_ms)

    def bind_simulator(self, sim: Any) -> None:
        """Sample on ``interval_ms`` cadence while ``sim`` has work queued.

        The sampler reschedules itself only while other events remain,
        so the queue still drains.  Sampling actions are pure reads and
        never touch the simulator clock or any RNG, so attaching a
        collector leaves event outcomes byte-identical (relative order
        of the workload's own events is preserved -- sequence numbers
        stay monotone in push order).
        """

        def tick() -> None:
            # Route through the shared cadence so a boundary served by a
            # push (observe_*) between wake-ups is not sampled twice.
            self._tick_to(sim.clock.now_ms)
            if len(sim.queue) > 0:
                sim.schedule(self.interval_ms, tick)

        sim.schedule(self.interval_ms, tick)

    # -- reporting ----------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Deterministic roll-up for bench trajectories and reports."""
        per_series: Dict[str, int] = {}
        for sample in self._samples:
            per_series[sample.series] = per_series.get(sample.series, 0) + 1
        return {
            "samples": len(self._samples),
            "dropped": self.dropped,
            "ticks": self.ticks,
            "series": {k: per_series[k] for k in sorted(per_series)},
            "flow_cache": {
                "resident": len(self.flow_cache),
                "exported": self.flow_cache.exported,
                "sampled_out": self.flow_cache.sampled_out,
            },
            "alerts": len(self.alerts),
        }


class NullTelemetryCollector(TelemetryCollector):
    """Disabled collector: every operation is a constant-time no-op."""

    enabled = False

    def __init__(self) -> None:  # noqa: D401 - trivially empty
        super().__init__()

    def emit(self, t_ms, series, value, source="", **labels):
        return None  # type: ignore[return-value]

    def observe_install(self, switch, command, started_ms, finished_ms) -> None:
        return None

    def observe_batch(
        self, scheduler, pattern, started_ms, finished_ms, size, deadline_misses=0
    ) -> None:
        return None

    def observe_probe(self, switch, op, t_ms, rtt_ms) -> None:
        return None

    def observe_flow(self, source, key, t_ms, packets=1) -> None:
        return None

    def watch(self, name, probe) -> None:
        return None

    def watch_switch(self, name, switch) -> None:
        return None

    def watch_network(self, network) -> None:
        return None

    def sample(self, now_ms) -> int:
        return 0

    def finish(self, now_ms) -> None:
        return None

    def bind_simulator(self, sim) -> None:
        return None


#: Process-wide disabled collector; instrumented components default to it.
NULL_TELEMETRY = NullTelemetryCollector()


# -- table-stack occupancy view ----------------------------------------------------
def occupancy_snapshot(tables: Any) -> Dict[str, Any]:
    """A JSON-ready per-layer occupancy view of a ranked table stack.

    For bounded layers the ``ratio`` is entries over capacity (geometry
    layers use slot units); unbounded layers report ``None``.  Pure
    read; see :meth:`repro.tables.stack.RankedTableStack.occupancy_snapshot`.
    """
    return tables.occupancy_snapshot()


# -- JSONL export -------------------------------------------------------------------
def telemetry_jsonl_lines(samples: Iterable[TelemetrySample]) -> List[str]:
    """Byte-deterministic JSONL lines (sorted keys, compact separators)."""
    return [json.dumps(sample.to_dict(), **_JSON_KWARGS) for sample in samples]


def write_telemetry_jsonl(
    samples: Iterable[TelemetrySample], target: PathOrFile
) -> int:
    """Write one JSON object per sample; returns the sample count."""
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            return write_telemetry_jsonl(samples, handle)
    count = 0
    for line in telemetry_jsonl_lines(samples):
        target.write(line + "\n")
        count += 1
    return count


def read_telemetry_jsonl(source: PathOrFile) -> List[TelemetrySample]:
    """Load a telemetry JSONL stream back into samples."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_telemetry_jsonl(handle)
    samples = []
    for line in source:
        line = line.strip()
        if line:
            samples.append(TelemetrySample.from_dict(json.loads(line)))
    return samples


def summarize_telemetry(samples: Sequence[TelemetrySample]) -> Dict[str, Any]:
    """Condense a telemetry stream into per-series statistics.

    The payload behind ``tango-telemetry summary`` and the markdown
    report's telemetry section: per series -- sample count, distinct
    sources, min/mean/max/last value, and the time extent.
    """
    per_series: Dict[str, Dict[str, Any]] = {}
    for sample in samples:
        stats = per_series.get(sample.series)
        if stats is None:
            stats = per_series[sample.series] = {
                "count": 0,
                "sources": set(),
                "min": sample.value,
                "max": sample.value,
                "sum": 0.0,
                "first_ms": sample.t_ms,
                "last_ms": sample.t_ms,
                "last": sample.value,
            }
        stats["count"] += 1
        stats["sources"].add(sample.source)
        stats["min"] = min(stats["min"], sample.value)
        stats["max"] = max(stats["max"], sample.value)
        stats["sum"] += sample.value
        stats["last_ms"] = max(stats["last_ms"], sample.t_ms)
        stats["last"] = sample.value
    series_out: Dict[str, Any] = {}
    for name in sorted(per_series):
        stats = per_series[name]
        series_out[name] = {
            "count": stats["count"],
            "sources": len(stats["sources"]),
            "min": stats["min"],
            "mean": stats["sum"] / stats["count"],
            "max": stats["max"],
            "last": stats["last"],
            "first_ms": stats["first_ms"],
            "last_ms": stats["last_ms"],
        }
    return {
        "samples": len(samples),
        "series": series_out,
        "span_ms": (
            max(s.t_ms for s in samples) - min(s.t_ms for s in samples)
            if samples
            else 0.0
        ),
    }


def timeseries(
    samples: Sequence[TelemetrySample],
    series: str,
    source: Optional[str] = None,
) -> List[Tuple[float, float]]:
    """Chronological (t_ms, value) points for one series.

    Samples are emitted in nondecreasing virtual-time order per source,
    but interleaved sources may arrive out of order -- points are
    returned sorted by (t_ms, value) for a stable plot.
    """
    points: List[Tuple[float, float]] = []
    for sample in samples:
        if sample.series != series:
            continue
        if source is not None and sample.source != source:
            continue
        insort(points, (sample.t_ms, sample.value))
    return points
