"""The ``tango-trace`` command-line tool.

Inspects and converts traces written by instrumented runs (the
``--trace`` flag on ``tango-probe probe``/``schedule`` and on the
traced examples).

Usage::

    tango-trace summary run.trace.jsonl        # span/event statistics
    tango-trace chrome run.trace.jsonl -o run.chrome.json
    python -m repro.obs.cli summary run.trace.jsonl
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.obs.export import read_jsonl, summarize_events, write_chrome_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tango-trace",
        description="Inspect and convert Tango telemetry traces (JSONL).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser("summary", help="span/event statistics for a trace")
    summary.add_argument("trace", help="JSONL trace file (from --trace)")

    chrome = sub.add_parser(
        "chrome",
        help="convert a JSONL trace to Chrome trace_event JSON "
        "(chrome://tracing, Perfetto)",
    )
    chrome.add_argument("trace", help="JSONL trace file (from --trace)")
    chrome.add_argument(
        "-o",
        "--output",
        default=None,
        help="output path (default: <trace>.chrome.json)",
    )
    return parser


def _print_summary(summary: dict, out) -> None:
    print(f"events         : {summary['events']}", file=out)
    if summary["spans"]:
        print("spans          :", file=out)
        width = max(len(name) for name in summary["spans"])
        for name, stats in summary["spans"].items():
            print(
                f"  {name:<{width}}  x{stats['count']:<6} "
                f"total {stats['total_ms']:10.2f} ms  "
                f"max {stats['max_ms']:8.2f} ms",
                file=out,
            )
    if summary["instants"]:
        print("instant events :", file=out)
        for name, count in summary["instants"].items():
            print(f"  {name}: {count}", file=out)
    if summary["patterns"]:
        print("pattern choices:", file=out)
        for name, count in summary["patterns"].items():
            print(f"  {name}: {count}", file=out)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        events = read_jsonl(args.trace)
    except OSError as error:
        print(f"error: cannot read {args.trace}: {error}", file=sys.stderr)
        return 1

    if args.command == "summary":
        _print_summary(summarize_events(events), out)
        return 0

    output = args.output
    if output is None:
        trace = Path(args.trace)
        base = trace.name[: -len(".jsonl")] if trace.name.endswith(".jsonl") else trace.name
        output = str(trace.with_name(base + ".chrome.json"))
    count = write_chrome_trace(events, output)
    print(f"chrome trace written: {output} ({count} events)", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
