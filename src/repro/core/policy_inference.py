"""Cache-replacement policy inference (paper Algorithm 2).

Under the ATTRIB / MONOTONE / LEX switch model, the cache policy is a
lexicographic ordering over (insertion time, use time, traffic count,
priority) with a monotone direction per attribute.  The probe:

1. installs ``s = 2 * cache_size`` flows and *initialises* each attribute
   so that every attribute splits the flows into a high half and a low
   half, with the halves of different attributes statistically
   independent (a balanced bit design; Figure 6 visualises one instance);
2. probes every flow once in reverse-use (MRU-first) order -- an order
   chosen so that probing never changes any flow's *relative* position
   under any attribute (use times are refreshed in an order-preserving
   way; traffic counts are initialised with gaps larger than the +1 a
   probe adds);
3. marks each flow cached/not-cached from its RTT tier, correlates the
   cached bit against every (attribute, direction) pair, and picks the
   strongest;
4. recurses with the found attribute held constant to expose the next
   lexicographic term, terminating when a *serial* attribute (insertion
   or use time, which are unique by construction and already induce a
   total order) is found.

**Determinism and degradation.**  The probe itself is deterministic (all
timing is virtual-clock, the flow design is a fixed bit pattern); under
injected faults (:mod:`repro.faults`) an install that exhausts its
retries is dropped from the round — the design stays valid on the
surviving flows, just with a smaller sample — and the result's
``confidence`` field reports the clean fraction of installs and RTT
measurements (1.0 on a fault-free run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.clustering import Cluster, assign_cluster, cluster_1d
from repro.core.probing import ProbeHandle, ProbingEngine
from repro.faults.retry import RetryGiveUpError
from repro.tables.entry import SERIAL_ATTRIBUTES, FlowAttribute
from repro.tables.policies import CachePolicy, Direction

#: Bit assignment: which bit of (flow_index % 16) drives each attribute's
#: high/low half.  Any fixed assignment works; independence comes from the
#: bits being balanced and pairwise independent over blocks of 16.
_ATTRIBUTE_BITS: Dict[FlowAttribute, int] = {
    FlowAttribute.INSERTION: 0,
    FlowAttribute.USE_TIME: 1,
    FlowAttribute.TRAFFIC: 2,
    FlowAttribute.PRIORITY: 3,
}

#: Traffic counts for the low/high halves; the gap (>= 10, as in the
#: paper) absorbs the single extra packet each later probe adds.
_TRAFFIC_LOW_PACKETS = 2
_TRAFFIC_HIGH_PACKETS = 12

_PRIORITY_CONSTANT = 1000


@dataclass
class PolicyProbeResult:
    """Inference outcome for one switch.

    ``confidence`` is 1.0 on a clean run and degrades with the fraction
    of probe installs that gave up after retries and of RTT measurements
    that timed out during this probe.
    """

    terms: List[Tuple[FlowAttribute, Direction]]
    correlations: List[Dict[str, float]] = field(default_factory=list)
    rounds: int = 0
    confidence: float = 1.0

    def as_policy(self, name: str = "inferred") -> CachePolicy:
        return CachePolicy(terms=tuple(self.terms), name=name)

    @property
    def primary(self) -> Optional[Tuple[FlowAttribute, Direction]]:
        return self.terms[0] if self.terms else None


def _high_bit(index: int, attribute: FlowAttribute) -> bool:
    return bool((index % 16) >> _ATTRIBUTE_BITS[attribute] & 1)


class PolicyProber:
    """Runs the policy-probing pattern against one switch.

    Args:
        engine: probing engine bound to the switch (should have no probe
            flows installed; the prober cleans up between rounds).
        cache_size: size of the cache layer under investigation (from the
            size probe).
        correlation_threshold: below this |correlation| no attribute is
            considered to influence caching and the probe stops.
        cluster_gap_ms: RTT gap separating latency tiers.
    """

    def __init__(
        self,
        engine: ProbingEngine,
        cache_size: int,
        correlation_threshold: float = 0.5,
        cluster_gap_ms: float = 0.5,
        max_terms: int = 4,
    ) -> None:
        if cache_size < 8:
            raise ValueError("cache_size too small to probe reliably")
        self.engine = engine
        self.cache_size = cache_size
        self.correlation_threshold = correlation_threshold
        self.cluster_gap_ms = cluster_gap_ms
        self.max_terms = max_terms

    # -- one probing round -----------------------------------------------------
    def _flow_count(self) -> int:
        s = 2 * self.cache_size
        return ((s + 15) // 16) * 16  # multiple of 16 keeps the bits balanced

    def _initialise_round(
        self, free_attributes: Sequence[FlowAttribute]
    ) -> Tuple[List[ProbeHandle], Dict[FlowAttribute, List[float]]]:
        """Install flows and initialise attributes; returns design values."""
        s = self._flow_count()
        indices = list(range(s))
        values: Dict[FlowAttribute, List[float]] = {
            attribute: [0.0] * s for attribute in FlowAttribute
        }

        # Priorities are fixed at insert time.
        def priority_for(index: int) -> int:
            if FlowAttribute.PRIORITY not in free_attributes:
                return _PRIORITY_CONSTANT
            return s + index if _high_bit(index, FlowAttribute.PRIORITY) else index

        handles: List[Optional[ProbeHandle]] = [None] * s
        insertion_order = sorted(
            indices, key=lambda i: (_high_bit(i, FlowAttribute.INSERTION), i)
        )
        for insertion_rank, index in enumerate(insertion_order):
            handle = self.engine.new_handle(priority=priority_for(index))
            try:
                self.engine.install_flow(handle)
            except RetryGiveUpError:
                # Degraded mode: the flow is dropped from this round's
                # design; ranks of surviving flows keep their relative
                # order, so correlations stay valid on a smaller sample.
                continue
            handles[index] = handle
            values[FlowAttribute.INSERTION][index] = float(insertion_rank)
            values[FlowAttribute.PRIORITY][index] = float(handle.priority)

        # Traffic counts: high half gets more packets; constant otherwise.
        for index in indices:
            if handles[index] is None:
                continue
            if FlowAttribute.TRAFFIC in free_attributes:
                packets = (
                    _TRAFFIC_HIGH_PACKETS
                    if _high_bit(index, FlowAttribute.TRAFFIC)
                    else _TRAFFIC_LOW_PACKETS
                )
            else:
                packets = _TRAFFIC_LOW_PACKETS
            for _ in range(packets):
                self.engine.send_probe_packet(handles[index])
            values[FlowAttribute.TRAFFIC][index] = float(packets)

        # Use times last, so earlier traffic does not disturb the pattern.
        use_order = sorted(
            indices, key=lambda i: (_high_bit(i, FlowAttribute.USE_TIME), i)
        )
        for use_rank, index in enumerate(use_order):
            if handles[index] is None:
                continue
            self.engine.send_probe_packet(handles[index])
            values[FlowAttribute.USE_TIME][index] = float(use_rank)

        # Compact to surviving flows so handle and value indices agree.
        kept = [i for i in indices if handles[i] is not None]
        compact_values = {
            attribute: [values[attribute][i] for i in kept]
            for attribute in FlowAttribute
        }
        kept_handles = [h for h in (handles[i] for i in kept) if h is not None]
        return kept_handles, compact_values

    def _measure_cached_bits(
        self, handles: List[ProbeHandle], order: Sequence[int]
    ) -> Tuple[np.ndarray, List[Cluster]]:
        """Probe flows in ``order``; classify each flow's tier.

        Each RTT is recorded against the flow's layer *before* the probe's
        own counter update, so the order only matters through the state
        changes probes inflict on *later* measurements.
        """
        rtts = [0.0] * len(handles)
        for index in order:
            rtts[index] = self.engine.measure_rtt(handles[index])
        clusters = cluster_1d(
            rtts, min_gap_ms=self.cluster_gap_ms, min_cluster_fraction=0.002
        )
        cached = np.array(
            [1.0 if assign_cluster(clusters, rtt) == 0 else 0.0 for rtt in rtts]
        )
        return cached, clusters

    @staticmethod
    def _correlate(values: Sequence[float], cached: np.ndarray) -> float:
        array = np.asarray(values, dtype=float)
        if array.std() == 0 or cached.std() == 0:
            return 0.0
        return float(np.corrcoef(array, cached)[0, 1])

    # -- probing rounds ---------------------------------------------------------
    def _first_round(
        self, free: List[FlowAttribute]
    ) -> Tuple[Optional[Tuple[FlowAttribute, Direction]], float, Dict[str, float]]:
        """One initialisation, measured MRU-first; correlate everything.

        With every attribute initialised far apart, probing cannot reorder
        any attribute (Section 5.3), so a single measurement identifies
        the primary sort attribute.
        """
        self.engine.remove_all_flows()
        handles, values = self._initialise_round(free)
        use_values = values[FlowAttribute.USE_TIME]
        order = sorted(range(len(handles)), key=lambda i: -use_values[i])
        cached, _ = self._measure_cached_bits(handles, order)

        correlations: Dict[str, float] = {}
        best: Optional[Tuple[FlowAttribute, Direction]] = None
        best_abs = 0.0
        for attribute in free:
            corr = self._correlate(values[attribute], cached)
            correlations[attribute.value] = corr
            if abs(corr) > best_abs:
                best_abs = abs(corr)
                direction = Direction.INCREASING if corr > 0 else Direction.DECREASING
                best = (attribute, direction)
        return best, best_abs, correlations

    def _recursion_round(
        self, free: List[FlowAttribute]
    ) -> Tuple[Optional[Tuple[FlowAttribute, Direction]], float, Dict[str, float]]:
        """Identify the next lexicographic term with held-constant probing.

        With the found attributes held constant, the flows *tie* on every
        found attribute, so the +1 a probe adds to a flow's traffic count
        (or its use-time refresh) can promote a not-yet-cached flow and
        evict an unmeasured cached one, corrupting later measurements.
        The defence is to measure once per candidate ``(attribute,
        direction)`` in that candidate's *predicted-cached-first* order:
        when the candidate is the true next term, every cached flow is
        measured before the first promotion can evict one, so its
        correlation is undamaged; wrong candidates only lose correlation
        they never had.
        """
        best: Optional[Tuple[FlowAttribute, Direction]] = None
        best_score = 0.0
        correlations: Dict[str, float] = {}
        for attribute in free:
            for direction in (Direction.INCREASING, Direction.DECREASING):
                self.engine.remove_all_flows()
                handles, values = self._initialise_round(free)
                candidate_values = values[attribute]
                use_values = values[FlowAttribute.USE_TIME]
                order = sorted(
                    range(len(handles)),
                    key=lambda i: (
                        -direction.value * candidate_values[i],
                        -use_values[i],
                    ),
                )
                cached, _ = self._measure_cached_bits(handles, order)
                corr = self._correlate(candidate_values, cached)
                score = direction.value * corr
                label = f"{attribute.value}:{'+' if direction is Direction.INCREASING else '-'}"
                correlations[label] = corr
                if score > best_score:
                    best_score = score
                    best = (attribute, direction)
        return best, best_score, correlations

    # -- public API -----------------------------------------------------------------
    def probe(self) -> PolicyProbeResult:
        """Infer the policy's lexicographic terms, primary first."""
        result = PolicyProbeResult(terms=[])
        found: List[FlowAttribute] = []
        installs_before = self.engine.installs_completed
        giveups_before = self.engine.fault_giveups
        rtt_measured_before = self.engine.rtt_measurements
        rtt_timeouts_before = self.engine.rtt_timeouts
        root = self.engine.tracer.span(
            "infer.policy_probe",
            category="inference",
            clock=self.engine.clock,
            switch=self.engine.switch_name,
            cache_size=self.cache_size,
        )
        while len(result.terms) < self.max_terms:
            free = [a for a in FlowAttribute if a not in found]
            if not free:
                break
            with self.engine.tracer.span(
                "infer.policy.round",
                category="inference",
                clock=self.engine.clock,
                round=result.rounds,
                free=len(free),
            ) as round_span:
                if not found:
                    best, best_score, correlations = self._first_round(free)
                else:
                    best, best_score, correlations = self._recursion_round(free)
                round_span.set(
                    best=best[0].value if best is not None else None,
                    score=round(best_score, 6),
                )
            self.engine.metrics.counter("infer.policy.rounds").inc()
            result.rounds += 1
            result.correlations.append(correlations)

            if best is None or best_score < self.correlation_threshold:
                break
            result.terms.append(best)
            found.append(best[0])
            if best[0] in SERIAL_ATTRIBUTES:
                break

        self.engine.remove_all_flows()
        installs = self.engine.installs_completed - installs_before
        giveups = self.engine.fault_giveups - giveups_before
        measured = self.engine.rtt_measurements - rtt_measured_before
        timeouts = self.engine.rtt_timeouts - rtt_timeouts_before
        install_ok = installs / (installs + giveups) if (installs + giveups) else 1.0
        measure_ok = (measured - timeouts) / measured if measured else 1.0
        result.confidence = install_ok * measure_ok
        root.set(
            rounds=result.rounds,
            terms=" > ".join(a.value for a, _ in result.terms),
            confidence=round(result.confidence, 6),
        ).close()
        self.engine.scores.put(
            self.engine.switch_name,
            "policy_probe",
            result,
            recorded_at_ms=self.engine.now_ms,
            source="policy_prober",
        )
        return result
