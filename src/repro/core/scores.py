"""The Tango score database.

Measurement results from applying Tango patterns are stored centrally so
that every component (inference engine, schedulers, applications) can
share them (Section 4).  Scores are keyed by (switch, metric, parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ScoreKey:
    """Identifies one measurement series."""

    switch: str
    metric: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, switch: str, metric: str, **params: Any) -> "ScoreKey":
        return cls(switch=switch, metric=metric, params=tuple(sorted(params.items())))


@dataclass
class ScoreRecord:
    """One stored measurement (a scalar, curve, or structured result).

    ``source`` is run provenance: which engine (and, where relevant,
    which probing pattern) produced the value -- e.g.
    ``"probing:priority-asc"`` or ``"size_prober"``.  It is not part of
    the key, so records written before provenance existed keep their
    identity and readers that ignore it are unaffected.
    """

    key: ScoreKey
    value: Any
    recorded_at_ms: float = 0.0
    source: Optional[str] = None


class TangoScoreDatabase:
    """Central store of probing results (TangoDB's score half).

    Lookups by switch are served from a per-switch secondary index that
    is maintained on every :meth:`put`/:meth:`remove`, so
    :meth:`records_for_switch` and :meth:`metrics_for_switch` cost
    O(records for that switch) instead of a linear scan over the whole
    database -- the difference between per-switch and fleet-scale cost
    once thousands of switches share one TangoDB.  The index preserves
    the exact ordering of the historical linear scan: records come back
    in first-insertion order, and overwriting an existing key keeps its
    original position.
    """

    def __init__(self) -> None:
        self._records: Dict[ScoreKey, ScoreRecord] = {}
        # Secondary index: switch -> insertion-ordered set of its keys
        # (a dict-of-None, exploiting dict ordering; values are unused).
        self._by_switch: Dict[str, Dict[ScoreKey, None]] = {}

    def put(
        self,
        switch: str,
        metric: str,
        value: Any,
        recorded_at_ms: float = 0.0,
        source: Optional[str] = None,
        **params: Any,
    ) -> ScoreKey:
        key = ScoreKey.make(switch, metric, **params)
        if key not in self._records:
            self._by_switch.setdefault(switch, {})[key] = None
        self._records[key] = ScoreRecord(
            key=key, value=value, recorded_at_ms=recorded_at_ms, source=source
        )
        return key

    def remove(self, switch: str, metric: str, **params: Any) -> bool:
        """Delete one record (e.g. a stale cached model); True if it existed."""
        key = ScoreKey.make(switch, metric, **params)
        if self._records.pop(key, None) is None:
            return False
        bucket = self._by_switch.get(switch)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._by_switch[switch]
        return True

    def get(self, switch: str, metric: str, default: Any = None, **params: Any) -> Any:
        key = ScoreKey.make(switch, metric, **params)
        record = self._records.get(key)
        return record.value if record is not None else default

    def get_record(
        self, switch: str, metric: str, **params: Any
    ) -> Optional[ScoreRecord]:
        """The full stored record (value + timestamp + provenance)."""
        return self._records.get(ScoreKey.make(switch, metric, **params))

    def get_by_key(self, key: ScoreKey) -> Optional[ScoreRecord]:
        """The stored record for an already-built :class:`ScoreKey`.

        The keyed twin of :meth:`get_record`, for callers that carry
        keys around -- e.g. the sharded fleet engine's merge journal,
        which replays worker-side records into the caller's database
        without re-deriving each key's parameters.
        """
        return self._records.get(key)

    def has(self, switch: str, metric: str, **params: Any) -> bool:
        return ScoreKey.make(switch, metric, **params) in self._records

    def records_for_switch(self, switch: str) -> List[ScoreRecord]:
        """All records for one switch, in first-insertion order."""
        bucket = self._by_switch.get(switch)
        if bucket is None:
            return []
        return [self._records[key] for key in bucket]

    def metrics_for_switch(self, switch: str) -> List[str]:
        """Sorted distinct metric names recorded for one switch."""
        bucket = self._by_switch.get(switch)
        if bucket is None:
            return []
        return sorted({key.metric for key in bucket})

    def records(self) -> List[ScoreRecord]:
        """Every stored record, in insertion order.

        The ground truth a linear scan would see -- the differential
        test for the per-switch secondary index compares
        :meth:`records_for_switch` against a filter over this list.
        """
        return list(self._records.values())

    def switches(self) -> List[str]:
        """Sorted names of every switch with at least one record."""
        return sorted(self._by_switch)

    def __len__(self) -> int:
        return len(self._records)
