"""The Tango score database.

Measurement results from applying Tango patterns are stored centrally so
that every component (inference engine, schedulers, applications) can
share them (Section 4).  Scores are keyed by (switch, metric, parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ScoreKey:
    """Identifies one measurement series."""

    switch: str
    metric: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, switch: str, metric: str, **params: Any) -> "ScoreKey":
        return cls(switch=switch, metric=metric, params=tuple(sorted(params.items())))


@dataclass
class ScoreRecord:
    """One stored measurement (a scalar, curve, or structured result).

    ``source`` is run provenance: which engine (and, where relevant,
    which probing pattern) produced the value -- e.g.
    ``"probing:priority-asc"`` or ``"size_prober"``.  It is not part of
    the key, so records written before provenance existed keep their
    identity and readers that ignore it are unaffected.
    """

    key: ScoreKey
    value: Any
    recorded_at_ms: float = 0.0
    source: Optional[str] = None


class TangoScoreDatabase:
    """Central store of probing results (TangoDB's score half)."""

    def __init__(self) -> None:
        self._records: Dict[ScoreKey, ScoreRecord] = {}

    def put(
        self,
        switch: str,
        metric: str,
        value: Any,
        recorded_at_ms: float = 0.0,
        source: Optional[str] = None,
        **params: Any,
    ) -> ScoreKey:
        key = ScoreKey.make(switch, metric, **params)
        self._records[key] = ScoreRecord(
            key=key, value=value, recorded_at_ms=recorded_at_ms, source=source
        )
        return key

    def get(self, switch: str, metric: str, default: Any = None, **params: Any) -> Any:
        key = ScoreKey.make(switch, metric, **params)
        record = self._records.get(key)
        return record.value if record is not None else default

    def get_record(
        self, switch: str, metric: str, **params: Any
    ) -> Optional[ScoreRecord]:
        """The full stored record (value + timestamp + provenance)."""
        return self._records.get(ScoreKey.make(switch, metric, **params))

    def has(self, switch: str, metric: str, **params: Any) -> bool:
        return ScoreKey.make(switch, metric, **params) in self._records

    def records_for_switch(self, switch: str) -> List[ScoreRecord]:
        return [r for k, r in self._records.items() if k.switch == switch]

    def metrics_for_switch(self, switch: str) -> List[str]:
        return sorted({k.metric for k in self._records if k.switch == switch})

    def __len__(self) -> int:
        return len(self._records)
