"""Incremental tail-cost planner for the prefix lookahead scheduler.

:class:`TailCostPlanner` replaces the retired recursive planner's
depth-0 *greedy re-simulation* -- which walked the entire remaining DAG
once per scheduling round -- with state maintained incrementally on a
long-lived :class:`~repro.core.requests.ReadySimulation` cursor:

* **Greedy levels.**  With whole-ready-batch (greedy) completion, the
  k-th greedy batch is exactly the set of pending requests at *level* k,
  where ``level(v) = 0`` if every dependency of ``v`` is complete and
  ``1 + max(level(p) for pending deps p)`` otherwise.  The planner keeps
  per-level per-switch duration sums, each level's makespan (the max
  over switches), and their total ``tail`` -- the greedy-to-completion
  estimate.  A depth-0 estimate is therefore O(1), and completing or
  undoing a request patches the levels in O(out-degree) of the touched
  region instead of re-walking the DAG.
* **Persistent ordering.**  Each rewrite pattern induces a *static*
  total order over all requests (its ``order_key`` plus the request id
  tiebreak -- the same key the :class:`_OrderingOracle` sorts by).  The
  ready set is tracked as a Fenwick presence bitset over that order, so
  ordering a frontier that changed by k requests costs O(k log n)
  updates instead of a full re-sort, the first j ordered requests
  materialise in O(j log n), and candidate prefix cuts (positions of
  ready requests with successors) come from a second bitset in
  O(log n) each.
* **Score-dominance pruning.**  Candidate cuts are explored in
  ascending order while per-switch prefix sums and their running max
  are extended incrementally; a cut whose prefix makespan already
  reaches the best complete cost cannot win under the planner's strict
  ``<`` improvement rule (durations are non-negative), so its subtree
  is skipped without changing any decision.
* **Frontier fingerprint + plan memo.**  A Zobrist-style XOR
  fingerprint over the completed set keys a bounded memo of
  ``(cost, cut)`` plans, so re-planning an unchanged frontier (e.g.
  after a round whose requests were all fault-deferred) is O(1).

Decision equivalence: the planner reproduces the retired recursive
planner's ``(cost, cut)`` decisions bit-for-bit when per-request
duration estimates are non-negative binary fractions (e.g. multiples of
0.25, as all shipped workloads use), because every incremental sum is
then exact.  With arbitrary floats the prefix-cut costs are still exact
(they accumulate in the reference's own order); only full-batch level
sums could differ in the last ulp from a fresh summation, which can
flip a tie between near-equal plans.  The differential suite
(``tests/test_prefix_planner_differential.py``) pins the equivalence
against :class:`repro.perf.reference._ReferencePrefixPlanner`.

Determinism: no wall clock, no randomness -- the fingerprint mixer is a
fixed splitmix64 permutation of request ids, and every iteration runs
over lists/dicts in deterministic order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.patterns import RewritePattern
from repro.core.requests import ReadySimulation, SwitchRequest

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """splitmix64 finalizer: a fixed, seedless 64-bit permutation."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class _PresenceFenwick:
    """Fenwick-tree bitset over a fixed position space.

    Supports O(log n) membership toggles, prefix counts (the rank of a
    position among present positions), and k-th-present selection --
    the three queries the planner's persistent ordering needs.
    """

    def __init__(self, size: int) -> None:
        self._size = size
        self._tree = [0] * (size + 1)
        self._present = bytearray(size)
        self.count = 0
        self._log = size.bit_length()

    def add(self, pos: int) -> None:
        if self._present[pos]:
            raise ValueError(f"position {pos} already present")
        self._present[pos] = 1
        self.count += 1
        i = pos + 1
        tree = self._tree
        while i <= self._size:
            tree[i] += 1
            i += i & (-i)

    def remove(self, pos: int) -> None:
        if not self._present[pos]:
            raise ValueError(f"position {pos} not present")
        self._present[pos] = 0
        self.count -= 1
        i = pos + 1
        tree = self._tree
        while i <= self._size:
            tree[i] -= 1
            i += i & (-i)

    def rank(self, pos: int) -> int:
        """Number of present positions <= ``pos`` (0-based, inclusive)."""
        total = 0
        i = pos + 1
        tree = self._tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def select(self, k: int) -> Optional[int]:
        """The k-th smallest present position (1-based), or None."""
        if k < 1 or k > self.count:
            return None
        pos = 0
        remaining = k
        tree = self._tree
        step = 1 << self._log
        while step > 0:
            nxt = pos + step
            if nxt <= self._size and tree[nxt] < remaining:
                pos = nxt
                remaining -= tree[nxt]
            step >>= 1
        return pos  # 0-based position


#: Bound on memoized plans; old entries are evicted FIFO.
_MEMO_LIMIT = 8192


class TailCostPlanner:
    """Incremental prefix-lookahead planner over a completion cursor.

    The planner owns its cursor's planning view: callers complete/undo
    hypothetical prefixes and commit issued batches *through the
    planner*, which forwards to the :class:`ReadySimulation` and patches
    its own level/ordering state in the same pass.

    Args:
        sim: the long-lived completion cursor (exclusively owned by this
            planner from here on).
        estimate: per-request duration estimate in ms (must be
            non-negative).
        patterns: rewrite patterns, in oracle order (ties break to the
            first, matching ``_OrderingOracle``).
        max_prefixes: candidate prefix cuts evaluated per tree node.
        oracle: optional ordering oracle whose metric counters attribute
            this planner's ordering work (duck-typed; only
            ``note_incremental_order`` is called).
    """

    def __init__(
        self,
        sim: ReadySimulation,
        estimate,
        patterns: Sequence[RewritePattern],
        max_prefixes: int = 4,
        oracle=None,
    ) -> None:
        if not patterns:
            raise ValueError("need at least one rewrite pattern")
        self._sim = sim
        self._dag = sim.dag
        self._patterns = list(patterns)
        self._max_prefixes = max_prefixes
        self._oracle = oracle

        # -- static per-request facts -------------------------------------
        self._est: Dict[int, float] = {}
        self._loc: Dict[int, str] = {}
        self._cmd: Dict[int, object] = {}
        self._pri: Dict[int, int] = {}
        self._succ: Dict[int, Tuple[int, ...]] = {}
        self._pred: Dict[int, Tuple[int, ...]] = {}
        self._has_succ: Dict[int, bool] = {}
        dag = self._dag
        for request in dag.requests:
            rid = request.request_id
            value = float(estimate(request))
            if value < 0.0:
                raise ValueError(
                    f"negative duration estimate {value} for request {rid}"
                )
            self._est[rid] = value
            self._loc[rid] = request.location
            self._cmd[rid] = request.command
            self._pri[rid] = request.priority
            succ = tuple(dag.successor_ids(rid))
            self._succ[rid] = succ
            self._pred[rid] = tuple(dag.predecessor_ids(rid))
            self._has_succ[rid] = bool(succ)
        # One structural O(V + E) pass, charged like a ready rebuild.
        dag.ops.edge_visits += sum(len(s) for s in self._succ.values())

        # -- greedy levels and tail cost ----------------------------------
        # level[rid] (pending requests only); per-level per-switch duration
        # sums + member counts; per-level makespans; their total (tail).
        # Levels are stored *raw*: true level = raw - self._shift.  When a
        # complete consumes the entire frontier, every remaining level
        # drops by exactly one (the longest pending chain to any node
        # loses exactly its head), so bumping the shift replaces an
        # O(remaining-DAG) releveling cascade -- which made chain-shaped
        # DAGs quadratic -- with an O(frontier) wholesale level drop.
        self._shift = 0
        self._level: Dict[int, int] = {}
        self._loads: Dict[int, Dict[str, float]] = {}
        self._lcounts: Dict[int, Dict[str, int]] = {}
        self._lmax: Dict[int, float] = {}
        self._lsize: Dict[int, int] = {}
        self._lunlock: Dict[int, int] = {}
        self._tail = 0.0
        seed_journal: List[tuple] = []
        for rid in dag.topological_order():
            if sim.is_completed(rid):
                continue
            level = 0
            for p in self._pred[rid]:
                dag.ops.edge_visits += 1
                if sim.is_completed(p):
                    continue
                candidate = self._level[p] + 1
                if candidate > level:
                    level = candidate
            self._level[rid] = level
            self._add_to_level(rid, level, seed_journal)
        del seed_journal  # construction is the base state; nothing to undo

        # -- ready-set command counts (drives the pattern choice) ---------
        self._counts: Dict[object, int] = {}
        ready_count = 0
        for rid, level in self._level.items():
            if level == self._shift:
                cmd = self._cmd[rid]
                self._counts[cmd] = self._counts.get(cmd, 0) + 1
                ready_count += 1
        self._ready_count = ready_count

        # -- persistent pattern ordering (Fenwick bitsets) ----------------
        # Per-pattern static position maps are built lazily; with the
        # default pattern set the winner never changes (ASCEND dominates
        # for any pure-ADD batch), so rebuilds are rare by construction.
        self._positions: Dict[int, Tuple[Dict[int, int], List[int]]] = {}
        self._pattern: Optional[RewritePattern] = None
        self._pos: Dict[int, int] = {}
        self._by_pos: List[int] = []
        self._present = _PresenceFenwick(0)
        self._unlock = _PresenceFenwick(0)
        self._rebuild_order(self.current_pattern())
        self.order_rebuilds = 0  # the constructor's build is not a rebuild

        # -- fingerprint + plan memo --------------------------------------
        self._zobrist: Dict[int, int] = {}
        self._fingerprint = 0
        self._memo: Dict[Tuple[int, int, int], Tuple[float, Optional[int]]] = {}
        self._frames: List[List[tuple]] = []

        # -- stats ---------------------------------------------------------
        self.plan_calls = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.dominance_prunes = 0
        self.realized_levels = 0

    # -- public read API -------------------------------------------------
    @property
    def ready_count(self) -> int:
        return self._ready_count

    @property
    def fingerprint(self) -> int:
        """Zobrist XOR over completions applied since construction."""
        return self._fingerprint

    def current_pattern(self) -> RewritePattern:
        """The oracle's pattern choice for the current ready set."""
        counts = self._counts
        return max(self._patterns, key=lambda p: p.score_counts(counts))

    def head_requests(self, k: int) -> List[SwitchRequest]:
        """The first ``k`` ready requests in the winning pattern's order."""
        self._ensure_order()
        requests = self._dag._requests
        return [requests[rid] for rid in self._head_ids(k)]

    def stats(self) -> Dict[str, int]:
        """Planner work counters for bench trajectories."""
        return {
            "plan_calls": self.plan_calls,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "dominance_prunes": self.dominance_prunes,
            "order_rebuilds": self.order_rebuilds,
            "realized_levels": self.realized_levels,
        }

    # -- cursor movement -------------------------------------------------
    def complete(self, request_ids: Iterable[int]) -> None:
        """Hypothetically complete a batch of *ready* requests (undoable).

        Raises:
            ValueError: a request is not ready, already complete, or
                duplicated; the planner and cursor are left untouched.
        """
        rids = list(request_ids)
        self._check_ready(rids)
        self._sim.complete(rids)  # validates duplicates, pushes one frame
        journal: List[tuple] = []
        self._apply_complete(rids, journal)
        self._frames.append(journal)

    def undo(self) -> None:
        """Revert the most recent :meth:`complete` frame exactly."""
        journal = self._frames.pop()
        self._replay_inverse(journal)
        self._sim.undo()

    def commit(self, request_ids: Iterable[int]) -> None:
        """Permanently complete issued requests (no undo frame).

        Requests already complete in the cursor are skipped, mirroring
        :meth:`ReadySimulation.commit`.
        """
        rids = [rid for rid in request_ids if not self._sim.is_completed(rid)]
        self._check_ready(rids)
        self._sim.commit(rids)
        discard: List[tuple] = []
        self._apply_complete(rids, discard)

    # -- planning --------------------------------------------------------
    def plan(self, depth: int) -> Tuple[float, Optional[int]]:
        """Best estimated remaining cost and the first-batch cut to take.

        Returns ``(0.0, None)`` on an empty frontier; otherwise the cut
        is in ``[1, ready_count]``.  Decision-identical to the retired
        recursive planner (see the module docstring for the float
        caveat); the cursor is left exactly as found.
        """
        self.plan_calls += 1
        if self._ready_count == 0:
            return 0.0, None
        if depth <= 0:
            # The greedy-to-completion estimate, maintained incrementally:
            # sum over levels of the level's per-switch-serial makespan.
            return self._tail, self._ready_count
        self._ensure_order()
        key = (self._fingerprint, self._sim.completed_count, depth)
        memoized = self._memo.get(key)
        if memoized is not None:
            self.memo_hits += 1
            return memoized
        self.memo_misses += 1

        best_cost = float("inf")
        best_cut: Optional[int] = None
        cuts = self._candidate_cuts()
        if cuts:
            prefix_ids = self._head_ids(cuts[-1])
            per_switch: Dict[str, float] = {}
            run_max = 0.0
            consumed = 0
            for cut in cuts:
                # Extend the per-switch prefix sums in the pattern's own
                # order -- the identical float-addition sequence the
                # reference's per-prefix rebuild performs.
                for rid in prefix_ids[consumed:cut]:
                    loc = self._loc[rid]
                    total = per_switch.get(loc, 0.0) + self._est[rid]
                    per_switch[loc] = total
                    if total > run_max:
                        run_max = total
                consumed = cut
                if run_max >= best_cost:
                    # Dominance: rest >= 0, so this cut cannot strictly
                    # beat the incumbent.  Skipping it is decision-free.
                    self.dominance_prunes += 1
                    continue
                self.complete(prefix_ids[:cut])
                rest, _ = self.plan(depth - 1)
                self.undo()
                cost = run_max + rest
                if cost < best_cost:
                    best_cost = cost
                    best_cut = cut
        # The full-batch cut: its estimate is level 0's makespan, and the
        # remainder recurses over whole levels in closed form.
        full_est = self._lmax.get(self._shift, 0.0)
        if full_est >= best_cost:
            self.dominance_prunes += 1
        else:
            rest = self._virtual_rest(depth - 1, 1, full_est)
            cost = full_est + rest
            if cost < best_cost:
                best_cost = cost
                best_cut = self._ready_count
        if len(self._memo) >= _MEMO_LIMIT:
            self._memo.pop(next(iter(self._memo)))
        self._memo[key] = (best_cost, best_cut)
        return best_cost, best_cut

    def _virtual_rest(self, depth: int, skip: int, consumed: float) -> float:
        """Remaining cost after hypothetically completing levels < skip.

        Full-batch cuts always complete an entire greedy level, so the
        recursion usually never needs to touch per-request state: a level
        with no unlocking members admits no prefix cuts, its batch cost
        is its stored makespan, and depth exhaustion leaves exactly
        ``tail - consumed``.  Only a level that *does* contain unlocking
        members (and remaining depth to explore them) falls back to
        really completing the skipped levels -- at most ``depth`` of
        them -- and planning from there.
        """
        raw = self._shift + skip
        if self._lsize.get(raw, 0) == 0:
            return 0.0
        if depth <= 0:
            return self._tail - consumed
        if self._lunlock.get(raw, 0) == 0:
            level_max = self._lmax.get(raw, 0.0)
            return level_max + self._virtual_rest(
                depth - 1, skip + 1, consumed + level_max
            )
        frames = 0
        for _ in range(skip):
            self.complete(self._sim.ready_ids())
            self.realized_levels += 1
            frames += 1
        cost, _ = self.plan(depth)
        for _ in range(frames):
            self.undo()
        return cost

    # -- ordering --------------------------------------------------------
    def _ensure_order(self) -> None:
        pattern = self.current_pattern()
        if pattern is not self._pattern:
            self._rebuild_order(pattern)
            self.order_rebuilds += 1

    def _rebuild_order(self, pattern: RewritePattern) -> None:
        """(Re)build the Fenwick bitsets over ``pattern``'s static order."""
        index = next(i for i, p in enumerate(self._patterns) if p is pattern)
        cached = self._positions.get(index)
        if cached is None:
            order = sorted(
                self._est,
                key=lambda rid: pattern.order_key(self._cmd[rid], self._pri[rid])
                + (rid,),
            )
            cached = ({rid: pos for pos, rid in enumerate(order)}, order)
            self._positions[index] = cached
        self._pos, self._by_pos = cached
        size = len(self._by_pos)
        self._present = _PresenceFenwick(size)
        self._unlock = _PresenceFenwick(size)
        frontier = self._shift
        for rid, level in self._level.items():
            if level == frontier:
                pos = self._pos[rid]
                self._present.add(pos)
                if self._has_succ[rid]:
                    self._unlock.add(pos)
        self._pattern = pattern

    def _head_ids(self, k: int) -> List[int]:
        """First ``k`` ready request ids in the current pattern order."""
        select = self._present.select
        by_pos = self._by_pos
        out = []
        for i in range(1, k + 1):
            pos = select(i)
            if pos is None:
                raise ValueError(f"cut {k} exceeds ready count {i - 1}")
            out.append(by_pos[pos])
        self._dag.ops.ready_yields += k
        if self._oracle is not None:
            self._oracle.note_incremental_order(k)
        return out

    def _candidate_cuts(self) -> List[int]:
        """Prefix lengths ending at an unlocking request, ascending.

        Matches the retired planner: a request is *unlocking* when it has
        successors in the DAG (a static property), and the full-batch cut
        is excluded.  At most ``max_prefixes`` cuts are returned.
        """
        cuts: List[int] = []
        k = 1
        while len(cuts) < self._max_prefixes:
            pos = self._unlock.select(k)
            if pos is None:
                break
            cut = self._present.rank(pos)
            if cut < self._ready_count:
                cuts.append(cut)
            k += 1
        return cuts

    # -- incremental state maintenance ------------------------------------
    def _check_ready(self, rids: Sequence[int]) -> None:
        frontier = self._shift
        for rid in rids:
            if self._level.get(rid) != frontier:
                raise ValueError(f"request {rid} is not ready in the planner")

    def _apply_complete(self, rids: Sequence[int], journal: List[tuple]) -> None:
        """Patch levels/ordering/tail after the cursor completed ``rids``."""
        if rids and len(rids) == self._ready_count:
            self._apply_full_frontier(rids, journal)
            return
        sim = self._sim
        frontier = self._shift
        stack: List[int] = []
        for rid in rids:
            self._remove_from_level(rid, frontier, journal)
            self._remove_ready(rid, journal)
            journal.append(("level", rid, frontier))
            del self._level[rid]
            self._toggle_fingerprint(rid, journal)
            for succ in self._succ[rid]:
                if not sim.is_completed(succ):
                    stack.append(succ)
        # Relevel downward: a completed dependency can only lower its
        # successors' levels, and each drop propagates along out-edges.
        ops = self._dag.ops
        while stack:
            rid = stack.pop()
            old = self._level.get(rid)
            if old is None:
                continue  # completed concurrently within this batch
            new = frontier
            for p in self._pred[rid]:
                ops.edge_visits += 1
                if sim.is_completed(p):
                    continue
                candidate = self._level[p] + 1
                if candidate > new:
                    new = candidate
            if new == old:
                continue
            self._remove_from_level(rid, old, journal)
            self._add_to_level(rid, new, journal)
            journal.append(("level", rid, old))
            self._level[rid] = new
            if old > frontier and new == frontier:
                self._add_ready(rid, journal)
            for succ in self._succ[rid]:
                if succ in self._level:
                    stack.append(succ)

    def _apply_full_frontier(self, rids: Sequence[int], journal: List[tuple]) -> None:
        """Whole-frontier completion: drop level 0 and bump the shift.

        After completing *all* ready requests, every remaining pending
        request's level drops by exactly one (its longest pending
        dependency chain loses exactly its ready head), so the per-level
        maps stay valid under ``shift + 1`` -- no releveling cascade.
        Cost: O(|frontier| + |new frontier|) structure updates.
        """
        frontier = self._shift
        for rid in rids:
            self._remove_ready(rid, journal)
            journal.append(("level", rid, frontier))
            del self._level[rid]
            self._toggle_fingerprint(rid, journal)
        journal.append(
            (
                "drop_level",
                frontier,
                self._loads.pop(frontier, None),
                self._lcounts.pop(frontier, None),
                self._lmax.get(frontier),
                self._lsize.get(frontier, 0),
                self._lunlock.get(frontier, 0),
            )
        )
        journal.append(("tail", self._tail))
        self._tail -= self._lmax.get(frontier, 0.0)
        self._lmax.pop(frontier, None)
        self._lsize.pop(frontier, None)
        self._lunlock.pop(frontier, None)
        journal.append(("shift", frontier))
        self._shift = frontier + 1
        # The unlocked requests (the new frontier) join the ready set;
        # ready_ids() also charges the yields honestly.
        for rid in self._sim.ready_ids():
            self._add_ready(rid, journal)

    def _remove_from_level(self, rid: int, level: int, journal: List[tuple]) -> None:
        loc = self._loc[rid]
        loads = self._loads[level]
        counts = self._lcounts[level]
        old_sum = loads[loc]
        old_cnt = counts[loc]
        journal.append(("load", level, loc, old_sum, old_cnt))
        if old_cnt == 1:
            # Deleting the emptied cell restores an exact zero, keeping
            # incremental sums bit-identical to fresh summation for
            # binary-fraction estimates.
            del loads[loc]
            del counts[loc]
        else:
            loads[loc] = old_sum - self._est[rid]
            counts[loc] = old_cnt - 1
        self._update_level_max(level, journal)
        journal.append(("lsize", level, self._lsize[level]))
        self._lsize[level] -= 1
        if self._has_succ[rid]:
            journal.append(("lunlock", level, self._lunlock[level]))
            self._lunlock[level] -= 1

    def _add_to_level(self, rid: int, level: int, journal: List[tuple]) -> None:
        loads = self._loads.setdefault(level, {})
        counts = self._lcounts.setdefault(level, {})
        loc = self._loc[rid]
        old_sum = loads.get(loc)
        old_cnt = counts.get(loc)
        journal.append(("load", level, loc, old_sum, old_cnt))
        loads[loc] = (old_sum if old_sum is not None else 0.0) + self._est[rid]
        counts[loc] = (old_cnt if old_cnt is not None else 0) + 1
        self._update_level_max(level, journal)
        journal.append(("lsize", level, self._lsize.get(level, 0)))
        self._lsize[level] = self._lsize.get(level, 0) + 1
        if self._has_succ[rid]:
            journal.append(("lunlock", level, self._lunlock.get(level, 0)))
            self._lunlock[level] = self._lunlock.get(level, 0) + 1

    def _update_level_max(self, level: int, journal: List[tuple]) -> None:
        old = self._lmax.get(level)
        journal.append(("lmax", level, old))
        journal.append(("tail", self._tail))
        loads = self._loads.get(level)
        new = max(loads.values()) if loads else 0.0
        if loads:
            self._lmax[level] = new
        else:
            self._lmax.pop(level, None)
        self._tail = self._tail - (old if old is not None else 0.0) + new

    def _remove_ready(self, rid: int, journal: List[tuple]) -> None:
        pos = self._pos[rid]
        self._present.remove(pos)
        if self._has_succ[rid]:
            self._unlock.remove(pos)
        cmd = self._cmd[rid]
        self._counts[cmd] = self._counts.get(cmd, 0) - 1
        self._ready_count -= 1
        journal.append(("ready_add", rid))

    def _add_ready(self, rid: int, journal: List[tuple]) -> None:
        pos = self._pos[rid]
        self._present.add(pos)
        if self._has_succ[rid]:
            self._unlock.add(pos)
        cmd = self._cmd[rid]
        self._counts[cmd] = self._counts.get(cmd, 0) + 1
        self._ready_count += 1
        journal.append(("ready_del", rid))

    def _toggle_fingerprint(self, rid: int, journal: List[tuple]) -> None:
        z = self._zobrist.get(rid)
        if z is None:
            z = _mix64(rid)
            self._zobrist[rid] = z
        self._fingerprint ^= z
        journal.append(("fp", rid))

    def _replay_inverse(self, journal: List[tuple]) -> None:
        """Apply a frame's journal in reverse, restoring exact old values."""
        for entry in reversed(journal):
            kind = entry[0]
            if kind == "load":
                _, level, loc, old_sum, old_cnt = entry
                loads = self._loads.setdefault(level, {})
                counts = self._lcounts.setdefault(level, {})
                if old_sum is None:
                    loads.pop(loc, None)
                    counts.pop(loc, None)
                else:
                    loads[loc] = old_sum
                    counts[loc] = old_cnt
            elif kind == "lmax":
                _, level, old = entry
                if old is None:
                    self._lmax.pop(level, None)
                else:
                    self._lmax[level] = old
            elif kind == "tail":
                self._tail = entry[1]
            elif kind == "drop_level":
                _, raw, loads, counts, lmax, lsize, lunlock = entry
                if loads is not None:
                    self._loads[raw] = loads
                if counts is not None:
                    self._lcounts[raw] = counts
                if lmax is not None:
                    self._lmax[raw] = lmax
                self._lsize[raw] = lsize
                self._lunlock[raw] = lunlock
            elif kind == "shift":
                self._shift = entry[1]
            elif kind == "lsize":
                self._lsize[entry[1]] = entry[2]
            elif kind == "lunlock":
                self._lunlock[entry[1]] = entry[2]
            elif kind == "level":
                self._level[entry[1]] = entry[2]
            elif kind == "ready_add":
                rid = entry[1]
                pos = self._pos[rid]
                self._present.add(pos)
                if self._has_succ[rid]:
                    self._unlock.add(pos)
                cmd = self._cmd[rid]
                self._counts[cmd] = self._counts.get(cmd, 0) + 1
                self._ready_count += 1
            elif kind == "ready_del":
                rid = entry[1]
                pos = self._pos[rid]
                self._present.remove(pos)
                if self._has_succ[rid]:
                    self._unlock.remove(pos)
                cmd = self._cmd[rid]
                self._counts[cmd] = self._counts.get(cmd, 0) - 1
                self._ready_count -= 1
            elif kind == "fp":
                self._fingerprint ^= self._zobrist[entry[1]]
            else:  # pragma: no cover - journal kinds are closed
                raise AssertionError(f"unknown journal entry {kind!r}")
