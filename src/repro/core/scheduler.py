"""The Tango scheduler (paper Section 6, Algorithm 3) and its extensions.

The basic scheduler repeatedly extracts the *independent set* of the
switch-request DAG and asks the pattern oracle for the best issue order:
every registered rewrite pattern scores the set (e.g. ``-(10*|DEL| +
1*|MOD| + 20*|ADD|^2)``), the highest-scoring pattern wins, and the
requests are issued in that pattern's order -- deletions first, then
modifications, then additions sorted by priority in the cheap direction
for this switch.

Two extensions from the paper are implemented:

* **Non-greedy prefix batching** (:class:`PrefixTangoScheduler`): instead
  of always issuing the whole independent set, the scheduler evaluates
  issuing only a prefix first (whose completion unlocks new requests and
  thus larger, better-ordered future batches), picking the alternative
  with the better estimated completion time.
* **Concurrent dependent dispatch** (:class:`ConcurrentTangoScheduler`):
  when request B depends on request A on a *different* switch, B can be
  released before A completes provided B's estimated finish trails A's
  by a guard interval (weak consistency).

**Fault tolerance.**  Every scheduler survives injected transient faults
(:mod:`repro.faults`): a request whose ``issue`` raises a
:class:`~repro.openflow.errors.TransientFaultError` is *deferred* — it
is simply not marked done, so it stays in the ``RequestDag`` and
reappears in a later independent set, where the batch is re-planned
around it.  Disconnect faults carry a reconnect time which becomes the
request's earliest retry instant, so retries never spin inside an
outage window.  :class:`ScheduleResult` splits deadline misses into
"missed due to fault" (the request itself was deferred at least once)
versus "missed due to schedule".

**Determinism.**  Scheduling consumes no wall clock and no randomness of
its own: all timing flows from the switches' virtual clocks and any
fault decisions from the injector's seeded streams, so a (DAG, executor,
fault plan, seed) tuple replays byte-for-byte.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.patterns import RewritePattern, TangoPatternDatabase
from repro.core.planner import TailCostPlanner
from repro.core.requests import ReadySimulation, RequestDag, SwitchRequest
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.telemetry import NULL_TELEMETRY, TelemetryCollector
from repro.obs.trace import NULL_TRACER, Tracer
from repro.openflow.channel import ControlChannel
from repro.openflow.errors import TransientFaultError
from repro.openflow.messages import FlowModCommand

if TYPE_CHECKING:  # pragma: no cover - typing-only import, avoids a package cycle
    from repro.faults.injector import FaultInjector


@dataclass
class IssueRecord:
    """Timing of one issued request."""

    request: SwitchRequest
    started_ms: float
    finished_ms: float


@dataclass
class ScheduleResult:
    """Outcome of scheduling one request DAG.

    ``deadline_misses`` is the total;
    ``deadline_misses_fault`` counts misses of requests that were
    deferred by at least one injected transient fault, and
    ``deadline_misses_schedule`` the remainder (pure scheduling misses).
    """

    makespan_ms: float
    records: List[IssueRecord] = field(default_factory=list)
    rounds: int = 0
    pattern_choices: List[str] = field(default_factory=list)
    deadline_misses: int = 0
    fault_retries: int = 0
    faulted_request_ids: Set[int] = field(default_factory=set)
    deadline_misses_fault: int = 0
    deadline_misses_schedule: int = 0

    @property
    def total_requests(self) -> int:
        return len(self.records)


class NetworkExecutor:
    """Issues switch requests against simulated switches.

    Each switch runs on its own virtual clock; the executor aligns all
    clocks to a common epoch when created (or on :meth:`reset_epoch`), so
    finish times are comparable across switches and dependent requests on
    different switches serialise correctly.
    """

    def __init__(
        self,
        channels: Dict[str, ControlChannel],
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        trace_requests: bool = False,
        fault_injector: Optional["FaultInjector"] = None,
        telemetry: Optional[TelemetryCollector] = None,
    ) -> None:
        if not channels:
            raise ValueError("need at least one switch channel")
        self.fault_injector = fault_injector
        if fault_injector is not None:
            channels = fault_injector.wrap_channels(channels)
        self.channels = dict(channels)
        self.epoch_ms = 0.0
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.trace_requests = trace_requests
        self._m_issued = {
            command: self.metrics.counter(
                "executor.requests_issued", command=command.value
            )
            for command in FlowModCommand
        }
        self._m_issue_ms = self.metrics.histogram("executor.issue_ms")
        self.reset_epoch()

    def reset_epoch(self) -> None:
        """Align every switch clock to a common starting instant."""
        epoch = max(ch.clock.now_ms for ch in self.channels.values())
        for channel in self.channels.values():
            channel.clock.advance_to(epoch)
        self.epoch_ms = epoch

    def now_ms(self) -> float:
        """The executor's virtual-time frontier (max over switch clocks)."""
        return max(ch.clock.now_ms for ch in self.channels.values())

    def switch_available_at(self, location: str) -> float:
        return self.channels[location].clock.now_ms

    def issue(self, request: SwitchRequest, not_before_ms: float = 0.0) -> IssueRecord:
        """Execute one request; the switch idles until ``not_before_ms``.

        Raises:
            KeyError: unknown switch location.
        """
        channel = self.channels[request.location]
        channel.clock.advance_to(max(channel.clock.now_ms, not_before_ms))
        started = channel.clock.now_ms
        channel.send_flow_mod(request.flow_mod())
        finished = channel.clock.now_ms
        self._m_issued[request.command].inc()
        self._m_issue_ms.observe(finished - started)
        if self.telemetry.enabled:
            self.telemetry.observe_install(
                request.location, request.command.value, started, finished
            )
        if self.trace_requests and self.tracer.enabled:
            self.tracer.event(
                "executor.issue",
                category="executor",
                clock=lambda: finished,
                request_id=request.request_id,
                switch=request.location,
                command=request.command.value,
                issue_ms=finished - started,
            )
        return IssueRecord(
            request=request, started_ms=started, finished_ms=finished
        )


def count_commands(requests: Sequence[SwitchRequest]) -> Dict[FlowModCommand, int]:
    return Counter(request.command for request in requests)


class _OrderingOracle:
    """The paper's ``orderingTangoOracle``: pick the best rewrite pattern.

    ``choose`` is memoized per batch: lookahead schedulers re-score the
    same independent set many times while exploring prefix cuts, and the
    chosen pattern and sort *permutation* are a pure function of the
    batch's (id, command, priority) triples for a fixed pattern set.
    Only the pattern and permutation are cached — never the request
    objects themselves — so a hit from a different DAG whose ids happen
    to collide still orders the *caller's* requests, not stale ones.
    The cache is bounded (oldest entry evicted) and private to this
    oracle instance.
    """

    _CACHE_LIMIT = 4096

    def __init__(
        self,
        patterns: Sequence[RewritePattern],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not patterns:
            raise ValueError("need at least one rewrite pattern")
        self.patterns = list(patterns)
        self._cache: Dict[tuple, Tuple[RewritePattern, Tuple[int, ...]]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        registry = metrics if metrics is not None else NULL_METRICS
        self._m_calls = registry.counter("scheduler.oracle_calls")
        self._m_scored = registry.counter("scheduler.oracle_requests_scored")

    def note_incremental_order(self, scored: int) -> None:
        """Attribute ordering work done incrementally on the oracle's
        behalf (the tail-cost planner materialising ordered prefixes)."""
        self._m_calls.inc()
        self._m_scored.inc(scored)

    def choose(
        self, requests: Sequence[SwitchRequest]
    ) -> Tuple[RewritePattern, List[SwitchRequest]]:
        self._m_calls.inc()
        self._m_scored.inc(len(requests))
        key = tuple((r.request_id, r.command, r.priority) for r in requests)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            pattern, perm = cached
            return pattern, [requests[i] for i in perm]
        self.cache_misses += 1
        counts = count_commands(requests)
        best_pattern = max(self.patterns, key=lambda p: p.score_counts(counts))
        perm = tuple(
            sorted(
                range(len(requests)),
                key=lambda i: best_pattern.order_key(
                    requests[i].command, requests[i].priority
                )
                + (requests[i].request_id, i),
            )
        )
        if len(self._cache) >= self._CACHE_LIMIT:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = (best_pattern, perm)
        return best_pattern, [requests[i] for i in perm]


class BasicTangoScheduler:
    """Algorithm 3: greedy batches ordered by the pattern oracle.

    Args:
        executor: network executor bound to the target switches.
        patterns: rewrite patterns to score (defaults to the pattern
            database's registered set).
        pattern_db: optional shared pattern database.
        tracer: telemetry tracer; per-batch spans are timestamped from
            the executor's virtual-time frontier (defaults disabled).
        metrics: metrics registry for batch/request/oracle counters
            (defaults disabled).
        telemetry: continuous-telemetry collector; batch spans feed its
            ``scheduler.batch_ms`` stream (defaults to the executor's
            collector, so attaching once at the executor covers both).
    """

    def __init__(
        self,
        executor: NetworkExecutor,
        patterns: Optional[Sequence[RewritePattern]] = None,
        pattern_db: Optional[TangoPatternDatabase] = None,
        strict: bool = False,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        telemetry: Optional[TelemetryCollector] = None,
    ) -> None:
        self.executor = executor
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.telemetry = telemetry if telemetry is not None else executor.telemetry
        self._t_batch_pattern = ""
        self._t_batch_start_ms = 0.0
        if patterns is None:
            db = pattern_db if pattern_db is not None else TangoPatternDatabase()
            patterns = db.rewrite_patterns
        self.oracle = _OrderingOracle(patterns, metrics=self.metrics)
        self.strict = strict
        name = type(self).__name__
        self._m_batches = self.metrics.counter("scheduler.batches", scheduler=name)
        self._m_requests = self.metrics.counter("scheduler.requests", scheduler=name)
        self._m_misses = self.metrics.counter(
            "scheduler.deadline_misses", scheduler=name
        )
        self._m_fault_retries = self.metrics.counter(
            "scheduler.fault_retries", scheduler=name
        )
        self._fault_holds: Dict[int, float] = {}
        self._fault_attempts: Dict[int, int] = {}

    # -- telemetry -------------------------------------------------------------
    def _batch_estimate_ms(self, ordered: Sequence[SwitchRequest]) -> Optional[float]:
        """Estimated batch makespan (per-switch serial), if an estimator
        is available to this scheduler variant."""
        estimate = self._strict_estimate()
        if estimate is None:
            return None
        per_switch: Dict[str, float] = defaultdict(float)
        for request in ordered:
            per_switch[request.location] += estimate(request)
        return max(per_switch.values(), default=0.0)

    def _open_batch_span(self, pattern_name: str, batch: Sequence[SwitchRequest], round_index: int):
        """A per-batch span carrying the oracle's choice and estimates."""
        span = self.tracer.span(
            "scheduler.batch",
            category="scheduler",
            clock=self.executor.now_ms,
            pattern=pattern_name,
            batch_size=len(batch),
            round=round_index,
        )
        if self.tracer.enabled:
            estimated = self._batch_estimate_ms(batch)
            if estimated is not None:
                span.set(estimated_ms=estimated)
        if self.telemetry.enabled:
            self._t_batch_pattern = pattern_name
            self._t_batch_start_ms = self.executor.now_ms()
        return span

    def _close_batch_span(
        self, span, batch_start_ms: float, records: Sequence[IssueRecord]
    ) -> None:
        if self.tracer.enabled or self.metrics.enabled or self.telemetry.enabled:
            misses = _count_deadline_misses(records, self.executor.epoch_ms)
            self._m_misses.inc(misses)
            if self.tracer.enabled:
                span.set(
                    actual_ms=self.executor.now_ms() - batch_start_ms,
                    deadline_misses=misses,
                )
            if self.telemetry.enabled:
                self.telemetry.observe_batch(
                    type(self).__name__,
                    self._t_batch_pattern,
                    self._t_batch_start_ms,
                    self.executor.now_ms(),
                    len(records),
                    deadline_misses=misses,
                )
        span.close()

    # -- static verification (strict mode) ------------------------------------
    def _strict_estimate(self) -> Optional[DurationEstimator]:
        """Duration estimator for deadline-feasibility checks, if any."""
        return None

    def _strict_guard_ms(self) -> Optional[float]:
        """Guard interval for concurrent-dispatch checks, if any."""
        return None

    def precheck(self, dag: RequestDag):
        """Statically verify ``dag`` before issuing anything.

        Runs :func:`repro.analysis.analyze_dag` with whatever knowledge
        this scheduler variant has (duration estimates, guard times).

        Returns:
            The :class:`~repro.analysis.DiagnosticReport`.

        Raises:
            repro.analysis.DiagnosticError: on any ERROR-level
                diagnostic (cycles, infeasible deadlines, ...).
        """
        from repro.analysis import analyze_dag

        report = analyze_dag(
            dag,
            estimate=self._strict_estimate(),
            guard_ms=self._strict_guard_ms(),
        )
        report.raise_on_errors()
        return report

    # -- fault-tolerant issue path ---------------------------------------------
    #: Upper bound on transient-fault deferrals for a single request,
    #: guarding against a misconfigured injector (e.g. a disconnect
    #: window the workload can never outlive).
    MAX_FAULT_DEFERRALS = 64

    def _begin_schedule(self, dag: RequestDag) -> ScheduleResult:
        """Shared preamble: strict precheck, epoch reset, fault state."""
        if self.strict:
            self.precheck(dag)
        self.executor.reset_epoch()
        self._fault_holds = {}
        self._fault_attempts = {}
        return ScheduleResult(makespan_ms=0.0)

    def _dep_finish(
        self, dag: RequestDag, request: SwitchRequest, finish_times: Dict[int, float]
    ) -> float:
        """Latest finish among the request's completed dependencies.

        Dependency-free requests anchor at the executor epoch so guard
        and deadline arithmetic stay on the executor timeline.
        """
        return max(
            (finish_times[p] for p in dag.predecessor_ids(request.request_id)),
            default=self.executor.epoch_ms,
        )

    def _issue_or_defer(
        self,
        dag: RequestDag,
        request: SwitchRequest,
        not_before_ms: float,
        finish_times: Dict[int, float],
        result: ScheduleResult,
    ) -> Optional[IssueRecord]:
        """Issue one request; on a transient fault defer it instead.

        A deferred request is *not* marked done: it stays in the DAG and
        is re-planned as part of a later independent set.  Disconnect
        faults record the reconnect instant as the request's earliest
        retry time, honoured on the next attempt via ``not_before_ms``.
        Returns the issue record, or ``None`` when deferred.
        """
        rid = request.request_id
        hold = self._fault_holds.pop(rid, None)
        if hold is not None:
            not_before_ms = max(not_before_ms, hold)
        try:
            record = self.executor.issue(request, not_before_ms=not_before_ms)
        except TransientFaultError as fault:
            self._note_fault(request, fault, result)
            return None
        finish_times[rid] = record.finished_ms
        result.records.append(record)
        dag.mark_done(request)
        return record

    def _note_fault(
        self, request: SwitchRequest, fault: TransientFaultError, result: ScheduleResult
    ) -> None:
        rid = request.request_id
        attempts = self._fault_attempts.get(rid, 0) + 1
        self._fault_attempts[rid] = attempts
        if attempts > self.MAX_FAULT_DEFERRALS:
            raise RuntimeError(
                f"request {rid} deferred {attempts} times by injected faults; "
                "giving up (check the fault plan's windows and probabilities)"
            ) from fault
        if fault.retry_at_ms is not None:
            self._fault_holds[rid] = fault.retry_at_ms
        result.fault_retries += 1
        result.faulted_request_ids.add(rid)
        self._m_fault_retries.inc()
        if self.telemetry.enabled:
            now = self.executor.now_ms()
            hold = (
                max(0.0, fault.retry_at_ms - now)
                if fault.retry_at_ms is not None
                else 0.0
            )
            self.telemetry.emit(
                now,
                "scheduler.fault_deferrals",
                1.0,
                source=type(self).__name__,
                switch=request.location,
                fault=type(fault).__name__,
            )
            self.telemetry.emit(
                now,
                "scheduler.fault_hold_ms",
                hold,
                source=type(self).__name__,
                switch=request.location,
            )
        if self.tracer.enabled:
            self.tracer.event(
                "scheduler.fault_deferred",
                category="scheduler",
                clock=self.executor.now_ms,
                request_id=rid,
                switch=request.location,
                fault=type(fault).__name__,
                attempts=attempts,
                retry_at_ms=fault.retry_at_ms,
            )

    def _finalize_schedule(self, result: ScheduleResult, makespan: float) -> ScheduleResult:
        """Shared epilogue: makespan and fault-attributed deadline misses."""
        epoch = self.executor.epoch_ms
        result.makespan_ms = makespan - epoch
        result.deadline_misses = _count_deadline_misses(result.records, epoch)
        result.deadline_misses_fault = _count_deadline_misses(
            [
                r
                for r in result.records
                if r.request.request_id in result.faulted_request_ids
            ],
            epoch,
        )
        result.deadline_misses_schedule = (
            result.deadline_misses - result.deadline_misses_fault
        )
        return result

    def schedule(self, dag: RequestDag) -> ScheduleResult:
        """Issue every request in the DAG; returns timing results.

        Batches are the DAG's successive independent sets, each ordered
        by the winning rewrite pattern.  Within the virtual timeline a
        request starts as soon as its switch is free and its own
        dependencies have finished -- there is no cross-switch barrier,
        so independent work on different switches overlaps.

        With ``strict=True`` (constructor knob) the DAG is statically
        verified first and scheduling aborts with
        :class:`~repro.analysis.DiagnosticError` on ERROR diagnostics.

        Requests hit by injected transient faults are deferred and
        re-planned in later rounds (see the module docstring).
        """
        result = self._begin_schedule(dag)
        finish_times: Dict[int, float] = {}
        makespan = self.executor.epoch_ms
        while not dag.is_done():
            independent = dag.independent_requests()
            if not independent:
                raise RuntimeError("DAG not done but no independent requests")
            pattern, ordered = self.oracle.choose(independent)
            result.pattern_choices.append(pattern.name)
            span = self._open_batch_span(pattern.name, ordered, result.rounds)
            batch_start = len(result.records)
            batch_start_ms = self.executor.now_ms() if self.tracer.enabled else 0.0
            for request in ordered:
                dep_finish = self._dep_finish(dag, request, finish_times)
                record = self._issue_or_defer(
                    dag, request, dep_finish, finish_times, result
                )
                if record is not None:
                    makespan = max(makespan, record.finished_ms)
            self._close_batch_span(
                span, batch_start_ms, result.records[batch_start:]
            )
            self._m_batches.inc()
            self._m_requests.inc(len(ordered))
            result.rounds += 1
        return self._finalize_schedule(result, makespan)


def _count_deadline_misses(records: Sequence[IssueRecord], epoch_ms: float) -> int:
    misses = 0
    for record in records:
        deadline = record.request.install_by_ms
        if deadline is not None and record.finished_ms - epoch_ms > deadline:
            misses += 1
    return misses


#: Estimates the duration (ms) of one request on its switch.
DurationEstimator = Callable[[SwitchRequest], float]


class PrefixTangoScheduler(BasicTangoScheduler):
    """Non-greedy batching extension (the paper's "scheduling tree").

    After ordering a batch, the scheduler considers issuing only a prefix
    of it when the prefix's completion unlocks dependent requests: the
    unlocked requests join the next batch, which may then be ordered more
    cheaply (e.g. merging additions into one ascending run).  Candidate
    prefixes are explored recursively up to ``lookahead_depth`` --
    "a scheduling tree of possibilities" (Section 6, Extensions) -- with
    estimated completion times from a duration estimator built on Tango
    latency curves.

    Planning is incremental (:class:`~repro.core.planner.TailCostPlanner`):
    one planner lives for the whole schedule, maintaining the
    greedy-to-completion tail cost, the pattern ordering (Fenwick
    bitsets), and a frontier-fingerprint plan memo on the long-lived
    completion cursor, patched in O(out-degree) per issued batch.  The
    retired recursive planner survives as
    :class:`repro.perf.reference._ReferencePrefixPlanner`, and the
    differential suite pins both to identical decisions and schedules.

    After :meth:`schedule` returns, ``last_planner`` exposes the run's
    planner (memo/pruning/rebuild counters) for bench trajectories.

    Args:
        executor: network executor.
        estimate: per-request duration estimate in ms.
        patterns: rewrite patterns for the oracle.
        max_prefixes: candidate prefix cuts evaluated per tree node.
        lookahead_depth: how many batch decisions ahead the tree explores
            before falling back to greedy full batches.
    """

    def __init__(
        self,
        executor: NetworkExecutor,
        estimate: DurationEstimator,
        patterns: Optional[Sequence[RewritePattern]] = None,
        pattern_db: Optional[TangoPatternDatabase] = None,
        max_prefixes: int = 4,
        lookahead_depth: int = 2,
        strict: bool = False,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        telemetry: Optional[TelemetryCollector] = None,
    ) -> None:
        super().__init__(
            executor,
            patterns=patterns,
            pattern_db=pattern_db,
            strict=strict,
            tracer=tracer,
            metrics=metrics,
            telemetry=telemetry,
        )
        if lookahead_depth < 1:
            raise ValueError("lookahead_depth must be at least 1")
        self.estimate = estimate
        self.max_prefixes = max_prefixes
        self.lookahead_depth = lookahead_depth
        #: The planner used by the most recent :meth:`schedule` run.
        self.last_planner: Optional[TailCostPlanner] = None

    def _strict_estimate(self) -> Optional[DurationEstimator]:
        return self.estimate

    def _estimate_batch_ms(self, ordered: Sequence[SwitchRequest]) -> float:
        """Estimated makespan of a batch (per-switch serial, cross parallel)."""
        per_switch: Dict[str, float] = defaultdict(float)
        for request in ordered:
            per_switch[request.location] += self.estimate(request)
        return max(per_switch.values(), default=0.0)

    def _ready(self, dag: RequestDag, done: frozenset) -> List[SwitchRequest]:
        """Requests whose dependencies are all in ``done`` (one-shot)."""
        return dag.ready_after(done)

    def _candidate_cuts(
        self, dag: RequestDag, ordered: Sequence[SwitchRequest]
    ) -> List[int]:
        """Prefix lengths whose completion unlocks new requests."""
        unlocking = set()
        for index, request in enumerate(ordered):
            if dag.successor_ids(request.request_id):
                unlocking.add(index + 1)
        cuts = sorted(c for c in unlocking if c < len(ordered))
        return cuts[: self.max_prefixes]

    def _make_planner(self, sim: ReadySimulation) -> TailCostPlanner:
        """An incremental tail-cost planner owning ``sim`` from here on."""
        return TailCostPlanner(
            sim,
            estimate=self.estimate,
            patterns=self.oracle.patterns,
            max_prefixes=self.max_prefixes,
            oracle=self.oracle,
        )

    def _plan(
        self, sim: ReadySimulation, depth: int
    ) -> Tuple[float, Optional[int]]:
        """Best estimated remaining cost and the first-batch cut to take.

        One-shot probe: builds a :class:`TailCostPlanner` over ``sim``
        and plans once, leaving the cursor exactly as found.  The
        scheduling loop itself keeps a single long-lived planner instead
        (see :meth:`schedule`), so the per-round cost is the incremental
        patch, not this O(V + E) construction.
        """
        return self._make_planner(sim).plan(depth)

    @staticmethod
    def _resolve_cut(cut: Optional[int], total: int) -> int:
        """Batch size from a planner cut: ``None`` means the whole batch.

        A cut of ``0`` is *not* the same as ``None`` -- the planner
        contract is cut in ``[1, ready_count]`` or ``None`` -- and
        treating it as falsy would silently issue the full batch.
        """
        return total if cut is None else cut

    def schedule(self, dag: RequestDag) -> ScheduleResult:
        result = self._begin_schedule(dag)
        finish_times: Dict[int, float] = {}
        makespan = self.executor.epoch_ms
        # One long-lived planner over one long-lived lookahead cursor,
        # kept in sync with the issued requests via commit() -- no
        # per-round O(V + E) rebuilds, re-sorts, or greedy re-walks.
        # Only *successfully issued* requests are committed: a
        # fault-deferred request stays pending in the DAG, the cursor,
        # and the planner's frontier alike.
        planner = self._make_planner(dag.simulation(dag.done_ids))
        self.last_planner = planner
        while not dag.is_done():
            if planner.ready_count == 0:
                raise RuntimeError("DAG not done but no independent requests")
            pattern = planner.current_pattern()

            _, cut = planner.plan(self.lookahead_depth)
            issue_now = planner.head_requests(
                self._resolve_cut(cut, planner.ready_count)
            )

            result.pattern_choices.append(pattern.name)
            span = self._open_batch_span(pattern.name, issue_now, result.rounds)
            if self.tracer.enabled:
                span.set(ready=planner.ready_count, cut=len(issue_now))
            batch_start = len(result.records)
            batch_start_ms = self.executor.now_ms() if self.tracer.enabled else 0.0
            issued: List[SwitchRequest] = []
            for request in issue_now:
                dep_finish = self._dep_finish(dag, request, finish_times)
                record = self._issue_or_defer(
                    dag, request, dep_finish, finish_times, result
                )
                if record is not None:
                    issued.append(request)
                    makespan = max(makespan, record.finished_ms)
            self._close_batch_span(
                span, batch_start_ms, result.records[batch_start:]
            )
            self._m_batches.inc()
            self._m_requests.inc(len(issue_now))
            planner.commit(r.request_id for r in issued)
            result.rounds += 1
        return self._finalize_schedule(result, makespan)


class DeadlineAwareTangoScheduler(BasicTangoScheduler):
    """Honours ``install_by`` deadlines ahead of pattern order.

    Switch requests may carry a deadline ("install_by: ms or best
    effort", Section 6).  Within each independent set, requests whose
    deadlines are at risk -- the estimated completion of the
    pattern-ordered batch would overshoot them -- are issued first in
    earliest-deadline order; the remainder keeps the rewrite pattern's
    cheap ordering.
    """

    def __init__(
        self,
        executor: NetworkExecutor,
        estimate: DurationEstimator,
        patterns: Optional[Sequence[RewritePattern]] = None,
        pattern_db: Optional[TangoPatternDatabase] = None,
        strict: bool = False,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        telemetry: Optional[TelemetryCollector] = None,
    ) -> None:
        super().__init__(
            executor,
            patterns=patterns,
            pattern_db=pattern_db,
            strict=strict,
            tracer=tracer,
            metrics=metrics,
            telemetry=telemetry,
        )
        self.estimate = estimate

    def _strict_estimate(self) -> Optional[DurationEstimator]:
        return self.estimate

    def _split_urgent(
        self, ordered: Sequence[SwitchRequest], now_ms: float
    ) -> Tuple[List[SwitchRequest], List[SwitchRequest]]:
        """Requests that would miss their deadline in pattern order."""
        urgent: List[SwitchRequest] = []
        relaxed: List[SwitchRequest] = []
        elapsed: Dict[str, float] = {}
        for request in ordered:
            location = request.location
            elapsed[location] = elapsed.get(location, 0.0) + self.estimate(request)
            deadline = request.install_by_ms
            if deadline is not None and now_ms + elapsed[location] > deadline:
                urgent.append(request)
            else:
                relaxed.append(request)
        urgent.sort(key=lambda r: (r.install_by_ms, r.request_id))
        return urgent, relaxed

    def schedule(self, dag: RequestDag) -> ScheduleResult:
        result = self._begin_schedule(dag)
        finish_times: Dict[int, float] = {}
        makespan = self.executor.epoch_ms
        while not dag.is_done():
            independent = dag.independent_requests()
            if not independent:
                raise RuntimeError("DAG not done but no independent requests")
            pattern, ordered = self.oracle.choose(independent)
            result.pattern_choices.append(pattern.name)
            elapsed_epoch = makespan - self.executor.epoch_ms
            urgent, relaxed = self._split_urgent(ordered, elapsed_epoch)
            span = self._open_batch_span(pattern.name, ordered, result.rounds)
            if self.tracer.enabled:
                span.set(urgent=len(urgent))
            batch_start = len(result.records)
            batch_start_ms = self.executor.now_ms() if self.tracer.enabled else 0.0
            for request in urgent + relaxed:
                dep_finish = self._dep_finish(dag, request, finish_times)
                record = self._issue_or_defer(
                    dag, request, dep_finish, finish_times, result
                )
                if record is not None:
                    makespan = max(makespan, record.finished_ms)
            self._close_batch_span(
                span, batch_start_ms, result.records[batch_start:]
            )
            self._m_batches.inc()
            self._m_requests.inc(len(ordered))
            result.rounds += 1
        return self._finalize_schedule(result, makespan)


class ConcurrentTangoScheduler(BasicTangoScheduler):
    """Concurrent dependent dispatch with guard times (weak consistency).

    A request whose dependencies are still in flight may be released
    early when its estimated finish time exceeds every dependency's
    estimated finish by at least ``guard_ms``, using Tango latency curves
    for the estimates.  This removes the batch barrier entirely: requests
    start as soon as their switch and their (guarded) dependencies allow.
    """

    def __init__(
        self,
        executor: NetworkExecutor,
        estimate: DurationEstimator,
        patterns: Optional[Sequence[RewritePattern]] = None,
        pattern_db: Optional[TangoPatternDatabase] = None,
        guard_ms: float = 5.0,
        strict: bool = False,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        telemetry: Optional[TelemetryCollector] = None,
    ) -> None:
        super().__init__(
            executor,
            patterns=patterns,
            pattern_db=pattern_db,
            strict=strict,
            tracer=tracer,
            metrics=metrics,
            telemetry=telemetry,
        )
        self.estimate = estimate
        self.guard_ms = guard_ms

    def _strict_estimate(self) -> Optional[DurationEstimator]:
        return self.estimate

    def _strict_guard_ms(self) -> Optional[float]:
        return self.guard_ms

    def schedule(self, dag: RequestDag) -> ScheduleResult:
        result = self._begin_schedule(dag)
        finish_times: Dict[int, float] = {}
        makespan = self.executor.epoch_ms

        while not dag.is_done():
            independent = dag.independent_requests()
            pattern, ordered = self.oracle.choose(independent)
            result.pattern_choices.append(pattern.name)
            if not ordered:
                raise RuntimeError("DAG not done but no independent requests")
            span = self._open_batch_span(pattern.name, ordered, result.rounds)
            if self.tracer.enabled:
                span.set(guard_ms=self.guard_ms)
            batch_start = len(result.records)
            batch_start_ms = self.executor.now_ms() if self.tracer.enabled else 0.0
            for request in ordered:
                # Guard times are measured on the executor's timeline, so
                # dependency-free requests anchor at the epoch -- not at
                # absolute zero, which silently weakened the guard
                # whenever the executor had already been used (epoch > 0).
                # On a fault-deferred retry the anchor is *recomputed*
                # from finish_times, so a dependency that completed in an
                # earlier round still projects its guard onto the retry.
                dep_finish = self._dep_finish(dag, request, finish_times)
                own_estimate = self.estimate(request)
                # Weak consistency: start early as long as the estimated
                # finish trails every dependency's finish by the guard.
                earliest_start = max(
                    self.executor.switch_available_at(request.location),
                    dep_finish + self.guard_ms - own_estimate,
                )
                record = self._issue_or_defer(
                    dag, request, earliest_start, finish_times, result
                )
                if record is not None:
                    makespan = max(makespan, record.finished_ms)
            self._close_batch_span(
                span, batch_start_ms, result.records[batch_start:]
            )
            self._m_batches.inc()
            self._m_requests.inc(len(ordered))
            result.rounds += 1
        return self._finalize_schedule(result, makespan)
