"""The switch inference engine: orchestrates all probes for one switch.

Given a switch (or a profile to build fresh instances from), the engine
runs the size probe (Algorithm 1), the cache-policy probe (Algorithm 2),
and the latency-curve probe, and assembles an
:class:`InferredSwitchModel` -- Tango's abstraction of the switch that
schedulers and applications consume instead of vendor documentation.

**Determinism.**  Every probe draws from child streams of the engine's
``seed`` and all timing is virtual-clock, so inference is reproducible
byte-for-byte — including under an attached
:class:`~repro.faults.FaultInjector`, whose decisions come from its own
seeded streams.  With a ``retry_policy`` set, probes survive transient
faults and the assembled model's :attr:`InferredSwitchModel.confidence`
reports how clean the run was (1.0 = fault-free).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.behavior_inference import BehaviorProber, BehaviorProbeResult
from repro.core.latency_curves import (
    LatencyCurve,
    LatencyCurveProber,
    PriorityPattern,
    derive_rewrite_patterns,
)
from repro.core.patterns import RewritePattern
from repro.core.policy_inference import PolicyProber, PolicyProbeResult
from repro.core.probing import ProbingEngine
from repro.core.scheduler import DurationEstimator
from repro.core.scores import TangoScoreDatabase
from repro.core.size_inference import SizeProber, SizeProbeResult
from repro.openflow.channel import ControlChannel
from repro.openflow.messages import FlowModCommand
from repro.core.requests import SwitchRequest
from repro.sim.rng import SeededRng
from repro.switches.profiles import SwitchProfile


@dataclass
class InferredSwitchModel:
    """Everything Tango learned about one switch."""

    name: str
    size_probe: Optional[SizeProbeResult] = None
    policy_probe: Optional[PolicyProbeResult] = None
    behavior_probe: Optional[BehaviorProbeResult] = None
    latency_curves: Dict[Tuple[FlowModCommand, PriorityPattern], LatencyCurve] = field(
        default_factory=dict
    )

    @property
    def layer_sizes(self) -> List[Optional[int]]:
        if self.size_probe is None:
            return []
        return [layer.estimated_size for layer in self.size_probe.layers]

    @property
    def confidence(self) -> float:
        """Min confidence over the probes that report one (1.0 = clean)."""
        values = [
            probe.confidence
            for probe in (self.size_probe, self.policy_probe)
            if probe is not None
        ]
        return min(values) if values else 1.0

    @property
    def fast_table_size(self) -> Optional[int]:
        sizes = self.layer_sizes
        return sizes[0] if sizes else None

    def rewrite_patterns(self) -> List[RewritePattern]:
        """Switch-specific rewrite patterns from the measured curves."""
        if not self.latency_curves:
            return []
        return derive_rewrite_patterns(self.latency_curves)

    def to_dict(self) -> dict:
        """A JSON-serialisable summary of the inferred model.

        Lets operators persist TangoDB contents across controller
        restarts or share them between controllers.
        """
        summary: dict = {"name": self.name}
        if self.size_probe is not None:
            summary["layers"] = [
                {
                    "size": layer.estimated_size,
                    "mean_rtt_ms": round(layer.mean_rtt_ms, 4),
                }
                for layer in self.size_probe.layers
            ]
            summary["cache_full"] = self.size_probe.cache_full
        summary["confidence"] = round(self.confidence, 6)
        if self.policy_probe is not None:
            summary["policy"] = [
                {"attribute": attribute.value, "direction": direction.name}
                for attribute, direction in self.policy_probe.terms
            ]
        if self.behavior_probe is not None:
            summary["behavior"] = {
                "traffic_driven_caching": self.behavior_probe.traffic_driven_caching,
                "first_packet_penalty_ms": round(
                    self.behavior_probe.first_packet_penalty_ms, 4
                ),
                "control_path_ms": round(self.behavior_probe.control_path_ms, 4),
            }
        if self.latency_curves:
            summary["latency_curves"] = {
                f"{op.value}/{pattern.value}": {
                    "linear_ms": round(curve.linear_ms, 6),
                    "quadratic_ms": round(curve.quadratic_ms, 8),
                }
                for (op, pattern), curve in self.latency_curves.items()
            }
        return summary

    def clone_as(self, name: str) -> "InferredSwitchModel":
        """A deep copy of this model relabelled for another switch.

        Used by the fleet model cache (:mod:`repro.core.fleet`): a cache
        hit hands an identical switch a private copy of the origin
        switch's model, so later mutations never alias across switches.
        """
        clone = copy.deepcopy(self)
        clone.name = name
        return clone

    def duration_estimator(self) -> DurationEstimator:
        """Per-request duration estimates from the measured curves.

        Additions are estimated from the ascending-priority curve at the
        switch's current fill level (a conservative per-op marginal cost);
        modifications and deletions use their flat curves.
        """
        curves = self.latency_curves

        def estimate(request: SwitchRequest) -> float:
            if request.command is FlowModCommand.ADD:
                curve = curves.get((FlowModCommand.ADD, PriorityPattern.ASCENDING))
            else:
                curve = curves.get((request.command, PriorityPattern.SAME))
            if curve is None:
                return 1.0
            return curve.per_op_ms(0)

        return estimate


class SwitchInferenceEngine:
    """Runs Tango's probes against one switch profile.

    Args:
        profile: the switch profile to infer (fresh instances are built
            for destructive probes such as the latency curves).
        scores: shared Tango score database.
        seed: base RNG seed for all probes.
        size_probe_max_rules: cap for switches that never reject adds.
        latency_batch_sizes: batch sizes for the latency-curve probe.
        tracer: telemetry tracer shared by every probing engine built;
            each probe's spans read that engine's own virtual clock.
        metrics: metrics registry shared by every probing engine built.
        fault_injector: optional :class:`~repro.faults.FaultInjector`;
            every control channel built for a probe is wrapped so the
            injector's plan applies to the whole inference run.
        retry_policy: optional :class:`~repro.faults.RetryPolicy` handed
            to every probing engine built (deterministic backoff against
            the injected faults).
    """

    def __init__(
        self,
        profile: SwitchProfile,
        scores: Optional[TangoScoreDatabase] = None,
        seed: int = 0,
        size_probe_max_rules: int = 8192,
        size_accuracy_target: float = 0.02,
        latency_batch_sizes: Tuple[int, ...] = (100, 400, 900, 1600),
        policy_cache_size: Optional[int] = None,
        tracer=None,
        metrics=None,
        fault_injector=None,
        retry_policy=None,
    ) -> None:
        self.profile = profile
        self.scores = scores if scores is not None else TangoScoreDatabase()
        self.seed = seed
        self.size_probe_max_rules = size_probe_max_rules
        self.size_accuracy_target = size_accuracy_target
        self.latency_batch_sizes = latency_batch_sizes
        self.policy_cache_size = policy_cache_size
        self.tracer = tracer
        self.metrics = metrics
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        self._build_count = 0
        #: Every probing engine built so far (one per probe stage round);
        #: the fleet driver reads these to charge virtual time and ops.
        self.probe_engines: List[ProbingEngine] = []

    def _fresh_engine(self) -> ProbingEngine:
        self._build_count += 1
        switch = self.profile.build(seed=self.seed + self._build_count)
        channel = ControlChannel(switch)
        if self.fault_injector is not None:
            channel = self.fault_injector.wrap_channel(channel)
        engine = ProbingEngine(
            channel,
            scores=self.scores,
            rng=SeededRng(self.seed).child(f"probe:{self._build_count}"),
            tracer=self.tracer,
            metrics=self.metrics,
            retry_policy=self.retry_policy,
        )
        self.probe_engines.append(engine)
        return engine

    # -- accounting ---------------------------------------------------------------
    def virtual_cost_ms(self) -> float:
        """Total virtual probing time spent so far, over all probe rounds.

        Each probe stage builds fresh switches whose local clocks start
        at zero, so the cost of a run is the *sum* of those clocks --
        exactly the serial virtual time `infer()` consumes, and the
        quantity the fleet driver turns into event delays.
        """
        return sum(e.channel.clock.now_ms for e in self.probe_engines)

    def probe_ops(self) -> int:
        """Deterministic operation count for this engine's probing so far.

        Flow installs plus RTT measurements over every probing engine
        built -- a pure function of (profile, seed, knobs), used by the
        ``fleet_infer`` perf-regression gate.
        """
        return sum(
            e.installs_completed + e.rtt_measurements for e in self.probe_engines
        )

    # -- individual probes ------------------------------------------------------
    def infer_sizes(self) -> SizeProbeResult:
        prober = SizeProber(
            self._fresh_engine(),
            max_rules=self.size_probe_max_rules,
            accuracy_target=self.size_accuracy_target,
        )
        return prober.probe()

    def infer_policy(self, cache_size: int) -> PolicyProbeResult:
        prober = PolicyProber(self._fresh_engine(), cache_size=cache_size)
        return prober.probe()

    def infer_latency_curves(
        self,
    ) -> Dict[Tuple[FlowModCommand, PriorityPattern], LatencyCurve]:
        prober = LatencyCurveProber(
            self._fresh_engine,
            batch_sizes=self.latency_batch_sizes,
            scores=self.scores,
        )
        return prober.probe()

    def infer_behavior(self) -> BehaviorProbeResult:
        return BehaviorProber(self._fresh_engine()).probe()

    # -- full inference ------------------------------------------------------------
    def infer_steps(
        self, include_policy: bool = True
    ) -> Generator[str, None, InferredSwitchModel]:
        """Run the probes one stage at a time (a resumable generator).

        Yields the completed stage's name after each probe stage (``"size"``,
        ``"behavior"``, ``"policy"`` when it runs, ``"latency_curves"``),
        and returns the assembled :class:`InferredSwitchModel` via
        ``StopIteration.value``.  Driving the generator to exhaustion is
        *byte-identical* to :meth:`infer` -- it is the same code --
        which is what lets :class:`repro.core.fleet.FleetInferenceEngine`
        interleave many switches on one event queue without perturbing
        any single switch's results.
        """
        model = InferredSwitchModel(name=self.profile.name)
        model.size_probe = self.infer_sizes()
        yield "size"
        model.behavior_probe = self.infer_behavior()
        yield "behavior"
        if include_policy:
            cache_size = self.policy_cache_size
            if cache_size is None:
                cache_size = model.fast_table_size
            multi_layer = model.size_probe.num_layers > 1
            if cache_size is not None and cache_size >= 8 and multi_layer:
                model.policy_probe = self.infer_policy(cache_size)
                yield "policy"
        model.latency_curves = self.infer_latency_curves()
        yield "latency_curves"
        self.scores.put(
            self.profile.name, "switch_model", model, source="inference_engine"
        )
        return model

    def infer(self, include_policy: bool = True) -> InferredSwitchModel:
        """Run all probes and assemble the switch model."""
        steps = self.infer_steps(include_policy=include_policy)
        while True:
            try:
                next(steps)
            except StopIteration as stop:
                return stop.value
