"""The Tango probing engine.

The probing engine is the component that applies Tango patterns to
switches and collects the measurements (Section 4).  It keeps
controller-side handles for every probe flow it installs, so inference
algorithms can later say "measure the RTT of flow 17" and get a data
packet crafted to match exactly that rule.

**Determinism.**  All timing comes from the channel's virtual clock and
all randomness from seeded streams: probe sampling draws from the
engine's ``SeededRng`` and retry backoff jitter from a *separate* child
stream (``rng.child("retry")``), so enabling a :class:`RetryPolicy` on a
fault-free channel changes nothing, and a faulted run replays
byte-for-byte for a fixed (seed, fault plan) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.faults.retry import RetryGiveUpError, RetryPolicy, TRANSIENT_FAULTS
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.trace import NULL_TRACER, Tracer
from repro.openflow.channel import ChannelRecord, ControlChannel
from repro.openflow.match import IpPrefix, Match, MatchKind, PacketFields
from repro.openflow.messages import FlowMod, FlowModCommand, PacketOut
from repro.core.patterns import ProbePattern
from repro.core.scores import TangoScoreDatabase
from repro.sim.rng import SeededRng


@dataclass
class ProbeHandle:
    """Controller-side record of one installed probe flow."""

    index: int
    match: Match
    packet: PacketFields
    priority: int

    def flow_mod(self, command: FlowModCommand = FlowModCommand.ADD) -> FlowMod:
        return FlowMod(command=command, match=self.match, priority=self.priority)


def probe_match(index: int, kind: MatchKind = MatchKind.L3, base: int = 0x0A00_0000) -> Match:
    """A unique, non-overlapping match for probe flow ``index``.

    L3 probes match a /32 destination; L2 probes match a destination MAC;
    L2+L3 probes match both (and thus occupy wide TCAM slots).
    """
    address = base + index
    if kind is MatchKind.L3:
        return Match(eth_type=0x0800, ip_dst=IpPrefix(address, 32))
    if kind is MatchKind.L2:
        return Match(eth_dst=address)
    return Match(eth_dst=address, eth_type=0x0800, ip_dst=IpPrefix(address, 32))


def probe_packet(index: int, base: int = 0x0A00_0000) -> PacketFields:
    """The data packet matching :func:`probe_match` for the same index."""
    address = base + index
    return PacketFields(eth_dst=address, eth_type=0x0800, ip_dst=address)


class ProbingEngine:
    """Applies probe patterns to one switch and records measurements.

    Args:
        channel: control channel to the switch under probe.
        scores: shared Tango score database.
        rng: randomness for sampling experiments.
        match_kind: width class used for generated probe rules.
        tracer: telemetry tracer; spans/events are timestamped from this
            engine's virtual clock (defaults to the disabled tracer).
        metrics: metrics registry (defaults to the disabled registry).
        retry_policy: when set, flow_mods hit by transient injected
            faults (:mod:`repro.faults`) are retried with deterministic
            exponential backoff on the virtual clock; exhausted retries
            raise :class:`~repro.faults.RetryGiveUpError`.  ``None``
            (the default) keeps the historical fail-fast behaviour.
    """

    def __init__(
        self,
        channel: ControlChannel,
        scores: Optional[TangoScoreDatabase] = None,
        rng: Optional[SeededRng] = None,
        match_kind: MatchKind = MatchKind.L3,
        address_base: int = 0x0A00_0000,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.channel = channel
        self.scores = scores if scores is not None else TangoScoreDatabase()
        self.rng = rng if rng is not None else SeededRng(0).child("probing")
        self.retry_policy = retry_policy
        self._retry_rng = self.rng.child("retry") if retry_policy is not None else None
        self.match_kind = match_kind
        self.address_base = address_base
        self.flows: List[ProbeHandle] = []
        self._next_index = 0
        # Plain counters (always on, unlike metrics): inference stages
        # diff these to compute the ``confidence`` of their results.
        self.rtt_measurements = 0
        self.rtt_timeouts = 0
        self.installs_completed = 0
        self.fault_retries = 0
        self.fault_giveups = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.clock = lambda: self.channel.clock.now_ms
        # Handles cached once so the per-packet cost with telemetry off
        # is a single no-op method call.
        switch = self.channel.switch.name
        self._m_packets = self.metrics.counter("probe.packets_sent", switch=switch)
        self._m_flow_mods = self.metrics.counter("probe.flow_mods_sent", switch=switch)
        self._m_retries = self.metrics.counter("probe.rtt_retries", switch=switch)
        self._m_timeouts = self.metrics.counter("probe.rtt_timeouts", switch=switch)
        self._m_installed = self.metrics.gauge("probe.flows_installed", switch=switch)
        self._m_fault_retries = self.metrics.counter(
            "probe.fault_retries", switch=switch
        )
        self._m_fault_giveups = self.metrics.counter(
            "probe.fault_giveups", switch=switch
        )

    @property
    def switch_name(self) -> str:
        return self.channel.switch.name

    @property
    def now_ms(self) -> float:
        return self.channel.clock.now_ms

    # -- fault-tolerant sends --------------------------------------------------
    def send_flow_mod(self, flow_mod: FlowMod) -> ChannelRecord:
        """Send one flow_mod, retrying transient faults per the policy.

        Without a :class:`RetryPolicy` this is a plain passthrough.
        With one, transient faults back off exponentially (jitter from
        the dedicated seeded retry stream, waits spent on the virtual
        clock, disconnects held until their reconnect instant) and an
        exhausted budget raises :class:`RetryGiveUpError`.  Permanent
        OpenFlow errors — ``TableFullError`` above all — always
        propagate immediately: Algorithm 1 depends on them.
        """
        policy = self.retry_policy
        if policy is None:
            return self.channel.send_flow_mod(flow_mod)
        started = self.now_ms
        attempts = 0
        while True:
            try:
                return self.channel.send_flow_mod(flow_mod)
            except TRANSIENT_FAULTS as fault:
                attempts += 1
                self.fault_retries += 1
                self._m_fault_retries.inc()
                if policy.exhausted(attempts, self.now_ms - started):
                    self.fault_giveups += 1
                    self._m_fault_giveups.inc()
                    if self.tracer.enabled:
                        self.tracer.event(
                            "probe.retry_giveup",
                            category="probing",
                            clock=self.clock,
                            switch=self.switch_name,
                            fault=type(fault).__name__,
                            attempts=attempts,
                        )
                    raise RetryGiveUpError("flow_mod", attempts, fault) from fault
                wait_ms = policy.backoff_ms(attempts, self._retry_rng)
                if fault.retry_at_ms is not None:
                    wait_ms = max(wait_ms, fault.retry_at_ms - self.now_ms)
                if self.tracer.enabled:
                    self.tracer.event(
                        "probe.fault_retry",
                        category="probing",
                        clock=self.clock,
                        switch=self.switch_name,
                        fault=type(fault).__name__,
                        attempt=attempts,
                        backoff_ms=wait_ms,
                    )
                if wait_ms > 0:
                    self.channel.clock.advance(wait_ms)

    # -- flow management ------------------------------------------------------
    def new_handle(self, priority: int = 100) -> ProbeHandle:
        index = self._next_index
        self._next_index += 1
        return ProbeHandle(
            index=index,
            match=probe_match(index, self.match_kind, self.address_base),
            packet=probe_packet(index, self.address_base),
            priority=priority,
        )

    def install_flow(self, handle: ProbeHandle) -> None:
        """Install the probe flow (raises TableFullError when rejected)."""
        self.send_flow_mod(handle.flow_mod(FlowModCommand.ADD))
        self.flows.append(handle)
        self.installs_completed += 1
        self._m_flow_mods.inc()
        self._m_installed.set(len(self.flows))

    def install_new_flow(self, priority: int = 100) -> ProbeHandle:
        handle = self.new_handle(priority=priority)
        self.install_flow(handle)
        return handle

    def remove_all_flows(self) -> None:
        """Delete every installed probe flow (best effort under faults).

        A DELETE whose retries give up is skipped rather than raised:
        deletion is idempotent, and inference rounds must be able to
        clean up even while the control plane is flaky.
        """
        for handle in self.flows:
            try:
                self.send_flow_mod(handle.flow_mod(FlowModCommand.DELETE))
            except RetryGiveUpError:
                if self.tracer.enabled:
                    self.tracer.event(
                        "probe.cleanup_skipped",
                        category="probing",
                        clock=self.clock,
                        flow=handle.index,
                    )
            self._m_flow_mods.inc()
        self.flows.clear()
        self._m_installed.set(0)

    # -- traffic ---------------------------------------------------------------
    def send_probe_packet(self, handle: ProbeHandle) -> float:
        """Send one packet matching the handle's rule; returns RTT (ms)."""
        self._m_packets.inc()
        return self.channel.send_packet_out(PacketOut(packet=handle.packet))

    def measure_rtt(self, handle: ProbeHandle, retries: int = 3) -> float:
        """The paper's MEASURE_RTT, with retransmission on probe loss.

        A lossy channel reports a timeout RTT for dropped probes; like a
        real measurement harness, the engine retransmits up to
        ``retries`` times before giving up and returning the timeout.
        """
        timeout_ms = getattr(self.channel, "LOSS_TIMEOUT_MS", float("inf"))
        self.rtt_measurements += 1
        rtt = self.send_probe_packet(handle)
        attempts = 0
        while rtt >= timeout_ms and attempts < retries:
            self._m_retries.inc()
            rtt = self.send_probe_packet(handle)
            attempts += 1
        if rtt >= timeout_ms:
            self.rtt_timeouts += 1
            self._m_timeouts.inc()
            if self.tracer.enabled:
                self.tracer.event(
                    "probe.rtt_timeout",
                    category="probing",
                    clock=self.clock,
                    flow=handle.index,
                    retries=attempts,
                )
        return rtt

    def select_random(self) -> ProbeHandle:
        """SELECT_RANDOM over the installed probe flows."""
        return self.rng.choice(self.flows)

    # -- pattern application ------------------------------------------------------
    def apply_pattern(self, pattern: ProbePattern) -> Dict[str, object]:
        """Apply a declarative probe pattern and record its measurements.

        Returns a dict with the flow_mod completion time and the list of
        per-packet RTTs, also stored in the score database.
        """
        with self.tracer.span(
            "probe.apply_pattern",
            category="probing",
            clock=self.clock,
            pattern=pattern.name,
            switch=self.switch_name,
        ) as span:
            start = self.now_ms
            for flow_mod in pattern.flow_mods:
                self.send_flow_mod(flow_mod)
            self._m_flow_mods.inc(len(pattern.flow_mods))
            install_ms = self.now_ms - start
            rtts = []
            for packet in pattern.traffic:
                self._m_packets.inc()
                rtts.append(self.channel.send_packet_out(PacketOut(packet=packet)))
            result = {"install_ms": install_ms, "rtts_ms": rtts}
            span.set(
                flow_mods=len(pattern.flow_mods),
                packets=len(rtts),
                install_ms=install_ms,
            )
        self.scores.put(
            self.switch_name,
            "pattern_result",
            result,
            recorded_at_ms=self.now_ms,
            source=f"probing:{pattern.name}",
            pattern=pattern.name,
        )
        return result

    def measure_install_time(self, flow_mods: Sequence[FlowMod]) -> float:
        """Total virtual time (ms) to apply ``flow_mods`` in order."""
        start = self.now_ms
        for flow_mod in flow_mods:
            self.send_flow_mod(flow_mod)
        self._m_flow_mods.inc(len(flow_mods))
        return self.now_ms - start
