"""Flow-table size inference (paper Algorithm 1).

Three stages:

1. *Fill* -- insert probe rules in doubling batches, sending one data
   packet per rule upon insertion (so the switch model leaves no cache
   slot empty), until the OpenFlow API rejects an add (total capacity
   reached) or a configurable cap is hit (switches with unbounded
   software tables never reject).
2. *Cluster* -- probe every installed rule once and cluster the RTTs;
   each cluster is one flow-table layer.
3. *Sample* -- for each layer, repeatedly draw random rules and count the
   consecutive draws whose RTT stays within the layer.  The run length is
   negative-binomially distributed with hit probability ``p = n_i/m``;
   the MLE over ``k`` trials with total run length ``a`` gives
   ``p_hat = a/(k+a)`` and the size estimate ``n_hat = m * a/(k+a)``.

The algorithm is asymptotically optimal: O(n) rule installs issued in
O(log n) batches, and O(n) probe packets (Section 5.2).

**Determinism and degradation.**  The probe draws only from the engine's
seeded RNG and the virtual clock, so runs replay byte-for-byte — with or
without injected faults (:mod:`repro.faults`).  When the engine has a
retry policy and an install still gives up
(:class:`~repro.faults.RetryGiveUpError`), the doubling round *resumes*
with the next probe rule instead of crashing; the result's
``confidence`` field reports the clean fraction of installs and RTT
measurements (1.0 on a fault-free run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.clustering import Cluster, assign_cluster, cluster_1d
from repro.core.probing import ProbingEngine
from repro.faults.retry import RetryGiveUpError
from repro.openflow.errors import TableFullError


@dataclass
class LayerEstimate:
    """Inferred properties of one flow-table layer."""

    mean_rtt_ms: float
    estimated_size: Optional[int]  # None = unbounded (software table)
    sample_trials: int = 0
    total_hits: int = 0


@dataclass
class SizeProbeResult:
    """Outcome of one size-probing run.

    ``confidence`` is 1.0 on a clean run and degrades towards 0 with the
    fraction of probe installs that gave up after retries
    (``install_giveups``) and of RTT measurements that timed out — a
    coarse but monotone signal that the estimates rest on fewer or
    noisier observations than requested.
    """

    total_rules_installed: int
    cache_full: bool
    clusters: List[Cluster]
    layers: List[LayerEstimate]
    rules_sent: int
    packets_sent: int
    install_giveups: int = 0
    confidence: float = 1.0

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def bounded_sizes(self) -> List[int]:
        return [l.estimated_size for l in self.layers if l.estimated_size is not None]


class SizeProber:
    """Runs the size-probing pattern against one switch.

    Args:
        engine: probing engine bound to the switch under test.
        trials_per_level: ``k``, sampling trials per cache layer.
        max_rules: cap for switches that never reject (software tables).
        initial_batch: first doubling batch size.
        cluster_gap_ms: minimum RTT gap separating two layers.
        priority: priority used for all probe rules (constant, so probing
            cost is priority-independent and the FIFO/LRU orderings are
            not disturbed).
    """

    def __init__(
        self,
        engine: ProbingEngine,
        trials_per_level: int = 50,
        max_rules: int = 8192,
        initial_batch: int = 16,
        cluster_gap_ms: float = 0.5,
        priority: int = 100,
        accuracy_target: float = 0.02,
        packet_budget_factor: int = 12,
    ) -> None:
        """See class docstring.

        Args:
            trials_per_level: minimum number of sampling trials (``k``).
            accuracy_target: target relative standard error of each size
                estimate; sampling continues until the accumulated hit
                count supports it (hits ~ 1/target^2) or the packet budget
                runs out.  0.02 keeps estimates comfortably inside the
                paper's "within 5% of actual" claim.
            packet_budget_factor: per-level cap on sampling packets, as a
                multiple of the number of installed rules (keeps the
                probe O(n), per the paper's optimality argument).
        """
        if trials_per_level <= 0:
            raise ValueError("trials_per_level must be positive")
        if max_rules <= 0:
            raise ValueError("max_rules must be positive")
        if not 0 < accuracy_target < 1:
            raise ValueError("accuracy_target must be in (0, 1)")
        self.engine = engine
        self.trials_per_level = trials_per_level
        self.max_rules = max_rules
        self.initial_batch = initial_batch
        self.cluster_gap_ms = cluster_gap_ms
        self.priority = priority
        self.accuracy_target = accuracy_target
        self.packet_budget_factor = packet_budget_factor

    # -- stage 1 ----------------------------------------------------------------
    def _fill(self) -> Tuple[bool, int]:
        """Insert rules in doubling batches.

        Returns ``(cache_full, giveups)``: whether the switch rejected an
        add (capacity reached) and how many installs were abandoned after
        exhausting their retry budget.  A given-up install *resumes the
        doubling round* with the next probe rule — the failed rule never
        occupied a slot, so the fill's termination argument (each success
        fills one slot; the switch rejects at capacity) is unchanged.
        """
        cache_full = False
        giveups = 0
        batch = self.initial_batch
        rounds = 0
        with self.engine.tracer.span(
            "infer.size.fill", category="inference", clock=self.engine.clock
        ) as span:
            while not cache_full and len(self.engine.flows) < self.max_rules:
                target = min(len(self.engine.flows) + batch, self.max_rules)
                while len(self.engine.flows) < target:
                    handle = self.engine.new_handle(priority=self.priority)
                    try:
                        self.engine.install_flow(handle)
                    except TableFullError:
                        cache_full = True
                        break
                    except RetryGiveUpError:
                        giveups += 1
                        if giveups > self.max_rules:
                            # Pathological plan (virtually every install
                            # fails): stop filling, report what we have.
                            span.set(fill_aborted=True)
                            self.engine.metrics.counter(
                                "infer.size.doubling_rounds"
                            ).inc(rounds)
                            return False, giveups
                        continue
                    # Traffic upon insertion keeps every cache slot occupied.
                    self.engine.send_probe_packet(handle)
                batch *= 2
                rounds += 1
            span.set(
                doubling_rounds=rounds,
                rules_installed=len(self.engine.flows),
                cache_full=cache_full,
                install_giveups=giveups,
            )
        self.engine.metrics.counter("infer.size.doubling_rounds").inc(rounds)
        return cache_full, giveups

    # -- stage 2 ----------------------------------------------------------------
    def _cluster(self) -> List[Cluster]:
        rtts = []
        flows = list(self.engine.flows)
        self.engine.rng.shuffle(flows)
        with self.engine.tracer.span(
            "infer.size.cluster", category="inference", clock=self.engine.clock
        ) as span:
            for handle in flows:
                rtts.append(self.engine.measure_rtt(handle))
            clusters = cluster_1d(
                rtts, min_gap_ms=self.cluster_gap_ms, min_cluster_fraction=0.002
            )
            span.set(probes=len(rtts), clusters=len(clusters))
        return clusters

    # -- stage 3 ----------------------------------------------------------------
    def _sample_level(self, clusters: List[Cluster], level: int, m: int) -> LayerEstimate:
        # The per-trial run length is geometric with hit probability
        # p = n_level / m, and the MLE's relative standard error scales as
        # 1/sqrt(total hits); sample until the hit count supports the
        # accuracy target (subject to the O(n) packet budget).
        target_hits = int(round(1.0 / self.accuracy_target**2))
        packet_budget = self.packet_budget_factor * m
        span = self.engine.tracer.span(
            "infer.size.sample_layer",
            category="inference",
            clock=self.engine.clock,
            layer=level,
        )
        packets = 0
        total_hits = 0
        trials_done = 0
        capped = False
        while trials_done < self.trials_per_level or (
            total_hits < target_hits and packets < packet_budget and not capped
        ):
            run = 0
            handle = self.engine.select_random()
            rtt = self.engine.measure_rtt(handle)
            packets += 1
            while assign_cluster(clusters, rtt) == level and run < m:
                run += 1
                handle = self.engine.select_random()
                rtt = self.engine.measure_rtt(handle)
                packets += 1
            trials_done += 1
            total_hits += run
            if run >= m:
                # The layer holds (nearly) every rule; cap per the paper.
                capped = True
        estimated = round(m * total_hits / (trials_done + total_hits)) if total_hits else 0
        span.set(
            mle_trials=trials_done,
            mle_hits=total_hits,
            packets=packets,
            estimated_size=estimated,
        ).close()
        self.engine.metrics.counter("infer.size.sample_trials").inc(trials_done)
        return LayerEstimate(
            mean_rtt_ms=clusters[level].mean_ms,
            estimated_size=estimated,
            sample_trials=trials_done,
            total_hits=total_hits,
        )

    # -- confidence -------------------------------------------------------------
    @staticmethod
    def _confidence(
        m: int, giveups: int, rtt_measured: int, rtt_timed_out: int
    ) -> float:
        """Clean fraction of installs times clean fraction of measurements."""
        install_ok = m / (m + giveups) if (m + giveups) else 1.0
        measure_ok = (
            (rtt_measured - rtt_timed_out) / rtt_measured if rtt_measured else 1.0
        )
        return install_ok * measure_ok

    # -- public API ------------------------------------------------------------
    def probe(self) -> SizeProbeResult:
        """Run all three stages and return the per-layer size estimates."""
        root = self.engine.tracer.span(
            "infer.size_probe",
            category="inference",
            clock=self.engine.clock,
            switch=self.engine.switch_name,
        )
        rtt_measured_before = self.engine.rtt_measurements
        rtt_timeouts_before = self.engine.rtt_timeouts
        cache_full, giveups = self._fill()
        m = len(self.engine.flows)
        if m == 0:
            root.set(rules_installed=0, layers=0).close()
            return SizeProbeResult(
                total_rules_installed=0,
                cache_full=cache_full,
                clusters=[],
                layers=[],
                rules_sent=0,
                packets_sent=0,
                install_giveups=giveups,
                confidence=self._confidence(0, giveups, 0, 0),
            )
        clusters = self._cluster()

        layers: List[LayerEstimate] = []
        for level in range(len(clusters)):
            if len(clusters) == 1:
                # A single tier: every rule sits in one layer of size m
                # (bounded) or unbounded (the cap stopped us, not the switch).
                layers.append(
                    LayerEstimate(
                        mean_rtt_ms=clusters[0].mean_ms,
                        estimated_size=m if cache_full else None,
                    )
                )
                break
            if level == len(clusters) - 1:
                # Slowest tier: the remainder. Unbounded unless the switch
                # rejected, in which case it holds m minus the faster tiers.
                if cache_full:
                    faster = sum(l.estimated_size or 0 for l in layers)
                    layers.append(
                        LayerEstimate(
                            mean_rtt_ms=clusters[level].mean_ms,
                            estimated_size=max(0, m - faster),
                        )
                    )
                else:
                    layers.append(
                        LayerEstimate(
                            mean_rtt_ms=clusters[level].mean_ms, estimated_size=None
                        )
                    )
                break
            layers.append(self._sample_level(clusters, level, m))

        result = SizeProbeResult(
            total_rules_installed=m,
            cache_full=cache_full,
            clusters=clusters,
            layers=layers,
            rules_sent=m + (1 if cache_full else 0),
            packets_sent=m * 2 + sum(l.total_hits + l.sample_trials for l in layers),
            install_giveups=giveups,
            confidence=self._confidence(
                m,
                giveups,
                self.engine.rtt_measurements - rtt_measured_before,
                self.engine.rtt_timeouts - rtt_timeouts_before,
            ),
        )
        root.set(
            rules_installed=m,
            layers=len(layers),
            packets_sent=result.packets_sent,
            cache_full=cache_full,
            confidence=round(result.confidence, 6),
        ).close()
        self.engine.scores.put(
            self.engine.switch_name,
            "size_probe",
            result,
            recorded_at_ms=self.engine.now_ms,
            source="size_prober",
        )
        return result
