"""Tango patterns and the pattern database.

A *Tango pattern* is "a sequence of standard OpenFlow flow modification
commands and a corresponding data traffic pattern" (Section 4).  Two
flavours exist in the system:

* :class:`ProbePattern` -- generates a concrete (flow_mods, probe traffic)
  sequence for the probing engine to apply to a switch.  The size and
  policy inference engines synthesise these on the fly.
* :class:`RewritePattern` -- an *ordering recipe with a score function*
  used by the Tango scheduler (Section 6): given the multiset of pending
  independent requests, the score predicts the (negated) cost of issuing
  them in the pattern's order, e.g. ``DEL MOD ASCEND_ADD`` scores
  ``-(10*|DEL| + 1*|MOD| + 20*|ADD|^2)``.

The pattern database is extensible: components register new patterns at
runtime, exactly as the paper prescribes for its architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.openflow.match import PacketFields
from repro.openflow.messages import FlowMod, FlowModCommand


@dataclass(frozen=True)
class ProbePattern:
    """A concrete probing recipe.

    Args:
        name: pattern identifier in the database.
        flow_mods: ordered control-plane commands to apply.
        traffic: probe packets to send after the flow mods (the data
            traffic part of the pattern).
        description: human-readable summary.
    """

    name: str
    flow_mods: Tuple[FlowMod, ...] = ()
    traffic: Tuple[PacketFields, ...] = ()
    description: str = ""


# A rewrite pattern's score function maps per-command counts to a score
# (higher is better / cheaper). Counts arrive as {ADD: n_add, ...}.
ScoreFunction = Callable[[Dict[FlowModCommand, int]], float]

# An order key decides the issue order of requests within the pattern.
# It maps (command, priority) to a sortable key.
OrderKey = Callable[[FlowModCommand, int], Tuple]


@dataclass(frozen=True)
class RewritePattern:
    """A scheduler ordering recipe with a cost score.

    The paper's example patterns order deletions first, then
    modifications, then additions sorted by priority; they differ in the
    priority direction and are scored by switch-specific weights.
    """

    name: str
    score: ScoreFunction
    order_key: OrderKey
    description: str = ""

    def score_counts(self, counts: Dict[FlowModCommand, int]) -> float:
        return self.score(counts)


def _command_rank(command: FlowModCommand) -> int:
    """DEL before MOD before ADD, as in the paper's pattern examples."""
    return {
        FlowModCommand.DELETE: 0,
        FlowModCommand.MODIFY: 1,
        FlowModCommand.ADD: 2,
    }[command]


def make_del_mod_add_pattern(
    name: str,
    add_weight: float,
    del_weight: float = 10.0,
    mod_weight: float = 1.0,
    ascending_adds: bool = True,
) -> RewritePattern:
    """Build a ``DEL MOD {ASCEND|DESCEND}_ADD`` rewrite pattern.

    The score follows the paper's form
    ``-(del_w*|DEL| + mod_w*|MOD| + add_w*|ADD|^2)``: the quadratic ADD
    term reflects TCAM entry shifting, and the per-pattern ``add_weight``
    encodes how badly the chosen priority direction shifts entries.
    """

    def score(counts: Dict[FlowModCommand, int]) -> float:
        adds = counts.get(FlowModCommand.ADD, 0)
        dels = counts.get(FlowModCommand.DELETE, 0)
        mods = counts.get(FlowModCommand.MODIFY, 0)
        return -(del_weight * dels + mod_weight * mods + add_weight * adds * adds)

    direction = 1 if ascending_adds else -1

    def order_key(command: FlowModCommand, priority: int) -> Tuple:
        return (_command_rank(command), direction * priority)

    return RewritePattern(
        name=name,
        score=score,
        order_key=order_key,
        description=(
            f"deletions, then modifications, then additions in "
            f"{'ascending' if ascending_adds else 'descending'} priority order"
        ),
    )


def make_type_only_pattern(
    name: str = "DEL MOD ADD (type only)",
    add_weight: float = 20.0,
    del_weight: float = 10.0,
    mod_weight: float = 1.0,
) -> RewritePattern:
    """Rule-type grouping without priority sorting.

    This is the paper's "Tango (Type)" arm in Figure 10: deletions, then
    modifications, then additions in arrival order -- no exploitation of
    the ascending-priority insert discount.
    """

    def score(counts: Dict[FlowModCommand, int]) -> float:
        adds = counts.get(FlowModCommand.ADD, 0)
        dels = counts.get(FlowModCommand.DELETE, 0)
        mods = counts.get(FlowModCommand.MODIFY, 0)
        return -(del_weight * dels + mod_weight * mods + add_weight * adds * adds)

    def order_key(command: FlowModCommand, priority: int) -> Tuple:
        return (_command_rank(command),)

    return RewritePattern(
        name=name,
        score=score,
        order_key=order_key,
        description="deletions, then modifications, then additions in arrival order",
    )


def default_rewrite_patterns() -> List[RewritePattern]:
    """The paper's two example patterns (Algorithm 3, lines 20-26)."""
    return [
        make_del_mod_add_pattern("DEL MOD ASCEND_ADD", add_weight=20.0, ascending_adds=True),
        make_del_mod_add_pattern("DEL MOD DESCEND_ADD", add_weight=40.0, ascending_adds=False),
    ]


class TangoPatternDatabase:
    """The central, extensible pattern store (TangoDB's pattern half)."""

    def __init__(self) -> None:
        self._probe_patterns: Dict[str, ProbePattern] = {}
        self._rewrite_patterns: Dict[str, RewritePattern] = {}
        for pattern in default_rewrite_patterns():
            self.register_rewrite(pattern)

    # -- probe patterns -------------------------------------------------------
    def register_probe(self, pattern: ProbePattern) -> None:
        self._probe_patterns[pattern.name] = pattern

    def get_probe(self, name: str) -> ProbePattern:
        return self._probe_patterns[name]

    @property
    def probe_patterns(self) -> List[ProbePattern]:
        return list(self._probe_patterns.values())

    # -- rewrite patterns -------------------------------------------------------
    def register_rewrite(self, pattern: RewritePattern) -> None:
        self._rewrite_patterns[pattern.name] = pattern

    def get_rewrite(self, name: str) -> RewritePattern:
        return self._rewrite_patterns[name]

    @property
    def rewrite_patterns(self) -> List[RewritePattern]:
        return list(self._rewrite_patterns.values())
