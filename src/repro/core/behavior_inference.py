"""Control-plane behaviour inference.

Section 3 of the paper distinguishes switches by *how* they place rules
into their tables, not just how many fit:

* **Traffic-driven caching** (OVS): a rule lands in the userspace table;
  only data traffic matching it installs a kernel microflow.  Signature:
  a flow's *first* packet is consistently slower than its second
  (Figure 2a).
* **Traffic-independent placement** (hardware Switch #1's FIFO): "there
  is no delay difference between the first packet and the second packet
  of a particular flow ... flow entry allocation here is independent of
  the traffic" (Figure 2b).

This prober runs the two-packets-per-flow Tango pattern and classifies
the switch, also reporting the first-packet penalty and a control-path
RTT baseline.  It extends the paper's inference suite in the direction
its conclusion calls for ("expand the set of Tango patterns to infer
other switch capabilities").
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List

from repro.core.probing import ProbingEngine
from repro.openflow.match import PacketFields
from repro.openflow.messages import PacketOut


@dataclass
class BehaviorProbeResult:
    """Classified control-plane behaviour of one switch."""

    traffic_driven_caching: bool
    first_packet_ms: float
    second_packet_ms: float
    control_path_ms: float
    flows_probed: int

    @property
    def first_packet_penalty_ms(self) -> float:
        """Mean extra latency of a flow's first packet vs its second."""
        return self.first_packet_ms - self.second_packet_ms


class BehaviorProber:
    """Runs the two-packets-per-flow pattern against one switch.

    Args:
        engine: probing engine bound to the switch (fresh state expected).
        flows: number of probe flows to install.
        penalty_threshold_ms: minimum consistent first-vs-second packet
            gap that indicates traffic-driven caching.  The paper's OVS
            gap is ~1.5 ms (slow 4.5 vs fast 3.0); hardware switches show
            none.
    """

    def __init__(
        self,
        engine: ProbingEngine,
        flows: int = 40,
        penalty_threshold_ms: float = 0.5,
    ) -> None:
        if flows < 4:
            raise ValueError("need at least 4 probe flows")
        self.engine = engine
        self.flows = flows
        self.penalty_threshold_ms = penalty_threshold_ms

    def probe(self) -> BehaviorProbeResult:
        """Install flows, send two packets each, classify the behaviour."""
        handles = [
            self.engine.install_new_flow(priority=100) for _ in range(self.flows)
        ]
        first_rtts: List[float] = []
        second_rtts: List[float] = []
        for handle in handles:
            first_rtts.append(self.engine.send_probe_packet(handle))
            second_rtts.append(self.engine.send_probe_packet(handle))

        # A packet matching nothing measures the control-path baseline.
        miss = PacketOut(packet=PacketFields(eth_type=0x0800, ip_dst=0x01))
        control_rtt = self.engine.channel.send_packet_out(miss)

        first_ms = statistics.mean(first_rtts)
        second_ms = statistics.mean(second_rtts)
        # Traffic-driven caching shows the penalty on (almost) every flow,
        # not just on average -- demand consistency to reject jitter.
        penalized = sum(
            1
            for f, s in zip(first_rtts, second_rtts)
            if f - s > self.penalty_threshold_ms
        )
        traffic_driven = penalized >= 0.8 * self.flows

        result = BehaviorProbeResult(
            traffic_driven_caching=traffic_driven,
            first_packet_ms=first_ms,
            second_packet_ms=second_ms,
            control_path_ms=control_rtt,
            flows_probed=self.flows,
        )
        self.engine.scores.put(
            self.engine.switch_name,
            "behavior_probe",
            result,
            recorded_at_ms=self.engine.now_ms,
            source="behavior_prober",
        )
        return result
