"""Tango core: patterns, probing, inference, and scheduling.

The central abstraction is the *Tango pattern* (Section 4): a sequence of
standard OpenFlow flow_mod commands plus a corresponding data-traffic
pattern.  The probing engine applies patterns to switches and stores the
measurements in the Tango score database; the switch inference engine
derives flow-table sizes (Algorithm 1) and cache policies (Algorithm 2)
from them; the Tango scheduler uses the resulting cost knowledge to
reorder rule installations.
"""

from repro.core.api import Tango
from repro.core.behavior_inference import BehaviorProber, BehaviorProbeResult
from repro.core.clustering import Cluster, cluster_1d
from repro.core.fleet import (
    CachedModel,
    FleetInferenceEngine,
    FleetMember,
    FleetMemberResult,
    FleetResult,
    ModelCache,
    build_fleet,
    profile_fingerprint,
)
from repro.core.inference import InferredSwitchModel, SwitchInferenceEngine
from repro.core.latency_curves import LatencyCurve, LatencyCurveProber
from repro.core.patterns import (
    ProbePattern,
    RewritePattern,
    TangoPatternDatabase,
    default_rewrite_patterns,
    make_del_mod_add_pattern,
    make_type_only_pattern,
)
from repro.core.online_probing import (
    DriftDetector,
    DriftFinding,
    OnlineSizeProber,
    OnlineSizeResult,
)
from repro.core.pipeline_inference import PipelineProber, PipelineProbeResult
from repro.core.placement import FlowPlacer, FlowRequirements, PlacementScore
from repro.core.policy_inference import PolicyProber, PolicyProbeResult
from repro.core.priorities import (
    assign_r_priorities,
    assign_topological_priorities,
    enforce_topological_priorities,
)
from repro.core.probing import ProbeHandle, ProbingEngine
from repro.core.requests import RequestDag, SwitchRequest
from repro.core.scheduler import (
    BasicTangoScheduler,
    ConcurrentTangoScheduler,
    DeadlineAwareTangoScheduler,
    NetworkExecutor,
    PrefixTangoScheduler,
    ScheduleResult,
)
from repro.core.scores import TangoScoreDatabase
from repro.core.size_inference import SizeProber, SizeProbeResult

__all__ = [
    "Tango",
    "BehaviorProber",
    "BehaviorProbeResult",
    "Cluster",
    "cluster_1d",
    "InferredSwitchModel",
    "SwitchInferenceEngine",
    "CachedModel",
    "FleetInferenceEngine",
    "FleetMember",
    "FleetMemberResult",
    "FleetResult",
    "ModelCache",
    "build_fleet",
    "profile_fingerprint",
    "LatencyCurve",
    "LatencyCurveProber",
    "ProbePattern",
    "RewritePattern",
    "TangoPatternDatabase",
    "default_rewrite_patterns",
    "make_del_mod_add_pattern",
    "make_type_only_pattern",
    "DriftDetector",
    "DriftFinding",
    "OnlineSizeProber",
    "OnlineSizeResult",
    "PipelineProber",
    "PipelineProbeResult",
    "FlowPlacer",
    "FlowRequirements",
    "PlacementScore",
    "PolicyProber",
    "PolicyProbeResult",
    "assign_topological_priorities",
    "assign_r_priorities",
    "enforce_topological_priorities",
    "ProbingEngine",
    "ProbeHandle",
    "RequestDag",
    "SwitchRequest",
    "BasicTangoScheduler",
    "PrefixTangoScheduler",
    "ConcurrentTangoScheduler",
    "DeadlineAwareTangoScheduler",
    "NetworkExecutor",
    "ScheduleResult",
    "TangoScoreDatabase",
    "SizeProber",
    "SizeProbeResult",
]
