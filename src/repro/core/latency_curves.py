"""Rule-operation latency curves.

Tango probes each switch with rewriting patterns -- the same set of rule
operations issued in different orders -- and records how installation
time scales with batch size and priority pattern (paper Figures 3a-3c).
The fitted curves feed two consumers:

* the scheduler's rewrite-pattern weights (how much worse descending-
  priority adds are than ascending ones on *this* switch), and
* the concurrent-dispatch extension, which needs per-operation duration
  estimates to compute guard times.

Total time for ``n`` operations is fitted as ``t(n) = a*n + b*n^2``: the
linear term is the per-operation base cost and the quadratic term
captures TCAM entry shifting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.patterns import RewritePattern, make_del_mod_add_pattern
from repro.core.probing import ProbingEngine
from repro.core.scores import TangoScoreDatabase
from repro.faults.retry import RetryGiveUpError
from repro.openflow.errors import TableFullError
from repro.openflow.messages import FlowModCommand


class PriorityPattern(enum.Enum):
    """Priority orderings exercised by the latency probe (Figure 3c)."""

    ASCENDING = "ascending"
    DESCENDING = "descending"
    SAME = "same"
    RANDOM = "random"


@dataclass(frozen=True)
class LatencyCurve:
    """A fitted ``t(n) = a*n + b*n^2`` installation-time curve (ms)."""

    op: FlowModCommand
    pattern: PriorityPattern
    linear_ms: float
    quadratic_ms: float
    samples: Tuple[Tuple[int, float], ...] = ()

    def total_ms(self, n: int) -> float:
        """Estimated total time to apply ``n`` operations."""
        return self.linear_ms * n + self.quadratic_ms * n * n

    def per_op_ms(self, n_existing: int) -> float:
        """Estimated marginal cost of the next operation."""
        return self.total_ms(n_existing + 1) - self.total_ms(n_existing)


def fit_curve(
    op: FlowModCommand,
    pattern: PriorityPattern,
    samples: Sequence[Tuple[int, float]],
) -> LatencyCurve:
    """Least-squares fit of ``t(n) = a*n + b*n^2`` through the samples."""
    if not samples:
        raise ValueError("need at least one sample to fit")
    ns = np.array([n for n, _ in samples], dtype=float)
    ts = np.array([t for _, t in samples], dtype=float)
    design = np.column_stack([ns, ns * ns])
    coef, *_ = np.linalg.lstsq(design, ts, rcond=None)
    return LatencyCurve(
        op=op,
        pattern=pattern,
        linear_ms=max(0.0, float(coef[0])),
        quadratic_ms=max(0.0, float(coef[1])),
        samples=tuple((int(n), float(t)) for n, t in samples),
    )


class LatencyCurveProber:
    """Measures installation-time curves on fresh switch instances.

    Each measurement needs a pristine switch (installs perturb TCAM
    state), so the prober takes a factory of probing engines rather than
    a single channel.

    Args:
        engine_factory: returns a probing engine to a *fresh* switch.
        batch_sizes: rule counts at which to sample the curve.
        scores: shared score database for the fitted curves.
    """

    def __init__(
        self,
        engine_factory: Callable[[], ProbingEngine],
        batch_sizes: Sequence[int] = (100, 400, 900, 1600),
        scores: Optional[TangoScoreDatabase] = None,
    ) -> None:
        if not batch_sizes:
            raise ValueError("need at least one batch size")
        self.engine_factory = engine_factory
        self.batch_sizes = tuple(sorted(batch_sizes))
        self.scores = scores if scores is not None else TangoScoreDatabase()
        self._switch_name: Optional[str] = None

    # -- measurement ---------------------------------------------------------
    def _priorities(self, pattern: PriorityPattern, n: int, rng) -> List[int]:
        if pattern is PriorityPattern.ASCENDING:
            return list(range(1, n + 1))
        if pattern is PriorityPattern.DESCENDING:
            return list(range(n, 0, -1))
        if pattern is PriorityPattern.SAME:
            return [100] * n
        universe = list(range(1, 4 * n + 1))
        return rng.sample(universe, n)

    def _measure_add(self, pattern: PriorityPattern, n: int) -> Tuple[int, float]:
        """Returns (rules actually installed, elapsed ms).

        Bounded switches may reject before ``n`` rules land; the sample
        is then truncated at the rejection point.
        """
        engine = self.engine_factory()
        self._switch_name = engine.switch_name
        priorities = self._priorities(pattern, n, engine.rng)
        start = engine.now_ms
        installed = 0
        for priority in priorities:
            handle = engine.new_handle(priority=priority)
            try:
                engine.install_flow(handle)
            except TableFullError:
                break
            except RetryGiveUpError:
                continue  # degraded mode: the sample just gets smaller
            installed += 1
        return installed, engine.now_ms - start

    def _preinstall(self, engine: ProbingEngine, n: int) -> list:
        handles = []
        for _ in range(n):
            handle = engine.new_handle(priority=100)
            try:
                engine.install_flow(handle)
            except TableFullError:
                break
            except RetryGiveUpError:
                continue
            handles.append(handle)
        return handles

    def _measure_mod(self, n: int) -> Tuple[int, float]:
        engine = self.engine_factory()
        self._switch_name = engine.switch_name
        handles = self._preinstall(engine, n)
        start = engine.now_ms
        measured = 0
        for handle in handles:
            try:
                engine.send_flow_mod(handle.flow_mod(FlowModCommand.MODIFY))
            except RetryGiveUpError:
                continue
            measured += 1
        return measured, engine.now_ms - start

    def _measure_del(self, n: int) -> Tuple[int, float]:
        engine = self.engine_factory()
        self._switch_name = engine.switch_name
        handles = self._preinstall(engine, n)
        start = engine.now_ms
        measured = 0
        for handle in handles:
            try:
                engine.send_flow_mod(handle.flow_mod(FlowModCommand.DELETE))
            except RetryGiveUpError:
                continue
            measured += 1
        return measured, engine.now_ms - start

    # -- public API -----------------------------------------------------------
    @staticmethod
    def _dedupe(samples):
        """Keep one sample per distinct installed count (truncation can
        map several requested batch sizes onto the switch's capacity)."""
        unique = {}
        for count, elapsed in samples:
            if count > 0:
                unique[count] = elapsed
        return sorted(unique.items())

    def probe(self) -> Dict[Tuple[FlowModCommand, PriorityPattern], LatencyCurve]:
        """Measure and fit all (operation, priority pattern) curves."""
        curves: Dict[Tuple[FlowModCommand, PriorityPattern], LatencyCurve] = {}
        for pattern in PriorityPattern:
            samples = self._dedupe(
                self._measure_add(pattern, n) for n in self.batch_sizes
            )
            curves[(FlowModCommand.ADD, pattern)] = fit_curve(
                FlowModCommand.ADD, pattern, samples
            )
        mod_samples = self._dedupe(self._measure_mod(n) for n in self.batch_sizes)
        curves[(FlowModCommand.MODIFY, PriorityPattern.SAME)] = fit_curve(
            FlowModCommand.MODIFY, PriorityPattern.SAME, mod_samples
        )
        del_samples = self._dedupe(self._measure_del(n) for n in self.batch_sizes)
        curves[(FlowModCommand.DELETE, PriorityPattern.SAME)] = fit_curve(
            FlowModCommand.DELETE, PriorityPattern.SAME, del_samples
        )
        if self._switch_name is not None:
            for (op, pattern), curve in curves.items():
                self.scores.put(
                    self._switch_name,
                    "latency_curve",
                    curve,
                    source=f"latency_curve_prober:{pattern.value}",
                    op=op.value,
                    pattern=pattern.value,
                )
        return curves


def derive_rewrite_patterns(
    curves: Dict[Tuple[FlowModCommand, PriorityPattern], LatencyCurve],
    reference_n: int = 200,
) -> List[RewritePattern]:
    """Turn measured curves into switch-specific rewrite patterns.

    The paper's default patterns use fixed weights; with measured curves
    Tango can weight each pattern by the switch's actual costs, e.g. OVS
    gets (near-)equal ascending/descending weights while hardware
    switches heavily penalise descending adds.
    """
    del_curve = curves[(FlowModCommand.DELETE, PriorityPattern.SAME)]
    mod_curve = curves[(FlowModCommand.MODIFY, PriorityPattern.SAME)]
    del_w = max(1e-6, del_curve.total_ms(reference_n) / reference_n)
    mod_w = max(1e-6, mod_curve.total_ms(reference_n) / reference_n)

    patterns = []
    for pattern_kind, name in (
        (PriorityPattern.ASCENDING, "DEL MOD ASCEND_ADD"),
        (PriorityPattern.DESCENDING, "DEL MOD DESCEND_ADD"),
    ):
        add_curve = curves[(FlowModCommand.ADD, pattern_kind)]
        # Normalise so the weight multiplies |ADD|^2 like the paper's score.
        add_w = max(1e-6, add_curve.total_ms(reference_n) / (reference_n**2))
        patterns.append(
            make_del_mod_add_pattern(
                name,
                add_weight=add_w,
                del_weight=del_w,
                mod_weight=mod_w,
                ascending_adds=pattern_kind is PriorityPattern.ASCENDING,
            )
        )
    return patterns
