"""Pipeline inference: multiple tables and their properties.

The paper's conclusion names this as future work: "expand the set of
Tango patterns to infer other switch capabilities such as multiple
tables and their priorities."  Three patterns are implemented:

1. **Table count** -- install a trivial rule at increasing ``table_id``
   until the switch answers with an error: the first rejected id is the
   pipeline length.
2. **Per-table lookup latency** -- build a GotoTable chain reaching
   table ``t`` and measure the probe RTT; the *increment* from the
   ``t-1`` chain isolates table ``t``'s lookup cost.  The table with the
   smallest lookup cost is the hardware-backed one ("only entries
   belonging to a single table are eligible to be pushed into TCAM",
   Section 2).
3. **Per-table capacity** -- fill each table until the add is rejected
   (or a cap is reached, marking the table software/unbounded).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.probing import probe_match, probe_packet
from repro.openflow.actions import GotoTableAction, OutputAction
from repro.openflow.channel import ControlChannel
from repro.openflow.errors import BadMatchError, TableFullError
from repro.openflow.messages import FlowMod, FlowModCommand, PacketOut
from repro.sim.rng import SeededRng


@dataclass
class PipelineProbeResult:
    """Inferred pipeline structure."""

    num_tables: int
    lookup_ms: List[float] = field(default_factory=list)
    hardware_table_id: Optional[int] = None
    table_sizes: List[Optional[int]] = field(default_factory=list)


class PipelineProber:
    """Infers pipeline structure through the control channel.

    Args:
        channel: control channel to the switch under probe.
        rng: randomness source.
        max_tables: upper bound on the pipeline length searched.
        size_cap: per-table fill cap; tables absorbing this many rules
            are reported unbounded.
        rtt_samples: probe packets per latency measurement.
    """

    def __init__(
        self,
        channel: ControlChannel,
        rng: Optional[SeededRng] = None,
        max_tables: int = 16,
        size_cap: int = 4096,
        rtt_samples: int = 12,
    ) -> None:
        self.channel = channel
        self.rng = rng if rng is not None else SeededRng(0).child("pipeline")
        self.max_tables = max_tables
        self.size_cap = size_cap
        self.rtt_samples = rtt_samples
        self._next_index = 0x00F0_0000

    def _fresh_index(self) -> int:
        self._next_index += 1
        return self._next_index

    # -- pattern 1: table count ----------------------------------------------------
    def count_tables(self) -> int:
        """Number of pipeline tables (first rejected table id)."""
        count = 0
        for table_id in range(self.max_tables):
            index = self._fresh_index()
            flow_mod = FlowMod(
                FlowModCommand.ADD,
                probe_match(index),
                priority=100,
                table_id=table_id,
            )
            try:
                self.channel.send_flow_mod(flow_mod)
            except BadMatchError:
                break
            except TableFullError:
                pass  # table exists, merely full
            else:
                self.channel.send_flow_mod(
                    FlowMod(
                        FlowModCommand.DELETE,
                        probe_match(index),
                        actions=(),
                        table_id=table_id,
                    )
                )
            count += 1
        return count

    # -- pattern 2: per-table lookup latency ---------------------------------------
    def _chain_rtt(self, depth: int) -> float:
        """Mean RTT of a probe traversing tables 0..depth."""
        index = self._fresh_index()
        match = probe_match(index)
        packet = probe_packet(index)
        installed = []
        for table_id in range(depth + 1):
            if table_id < depth:
                actions = (GotoTableAction(table_id=table_id + 1),)
            else:
                actions = (OutputAction(port=1),)
            flow_mod = FlowMod(
                FlowModCommand.ADD,
                match,
                priority=100,
                actions=actions,
                table_id=table_id,
            )
            self.channel.send_flow_mod(flow_mod)
            installed.append(table_id)
        rtts = [
            self.channel.send_packet_out(PacketOut(packet=packet))
            for _ in range(self.rtt_samples)
        ]
        for table_id in installed:
            self.channel.send_flow_mod(
                FlowMod(FlowModCommand.DELETE, match, actions=(), table_id=table_id)
            )
        return statistics.mean(rtts)

    def measure_lookups(self, num_tables: int) -> List[float]:
        """Per-table lookup latency via GotoTable chain increments."""
        chain_rtts = [self._chain_rtt(depth) for depth in range(num_tables)]
        lookups = [chain_rtts[0]]
        for depth in range(1, num_tables):
            lookups.append(max(0.0, chain_rtts[depth] - chain_rtts[depth - 1]))
        return lookups

    # -- pattern 3: per-table capacity ------------------------------------------------
    def measure_size(self, table_id: int) -> Optional[int]:
        """Fill table ``table_id`` until rejection (None = unbounded)."""
        installed = []
        size: Optional[int] = None
        for count in range(self.size_cap):
            index = self._fresh_index()
            flow_mod = FlowMod(
                FlowModCommand.ADD,
                probe_match(index),
                priority=100,
                table_id=table_id,
            )
            try:
                self.channel.send_flow_mod(flow_mod)
            except TableFullError:
                size = count
                break
            installed.append(index)
        for index in installed:
            self.channel.send_flow_mod(
                FlowMod(
                    FlowModCommand.DELETE,
                    probe_match(index),
                    actions=(),
                    table_id=table_id,
                )
            )
        return size

    # -- full probe ----------------------------------------------------------------------
    def probe(self, measure_sizes: bool = True) -> PipelineProbeResult:
        """Run all pipeline patterns."""
        num_tables = self.count_tables()
        result = PipelineProbeResult(num_tables=num_tables)
        if num_tables == 0:
            return result
        result.lookup_ms = self.measure_lookups(num_tables)
        # The channel round trip rides on every chain RTT; compare the
        # *incremental* costs, where it cancels except for table 0.  A
        # conservative correction subtracts the smallest increment seen.
        if num_tables > 1:
            corrected = [
                result.lookup_ms[0] - 2 * _channel_guess(self.channel)
            ] + result.lookup_ms[1:]
            result.hardware_table_id = min(
                range(num_tables), key=lambda t: corrected[t]
            )
        else:
            result.hardware_table_id = 0
        if measure_sizes:
            result.table_sizes = [
                self.measure_size(table_id) for table_id in range(num_tables)
            ]
        return result


def _channel_guess(channel: ControlChannel) -> float:
    """Rough one-way channel latency from the channel's own model."""
    one_way = getattr(channel, "_one_way", None)
    return one_way.mean_ms if one_way is not None else 0.0
