"""Online probing: measuring a switch that is already in production.

The paper notes the probing engine can run "offline testing of the
switch before it is plugged in the network, but online testing when the
switch is running" (Section 4).  Online probing differs in two ways:

* the switch holds *production* rules the prober must not disturb -- so
  probe rules are installed alongside them and removed afterwards;
* what can be measured changes: the rejection point now reveals the
  *free* capacity, and adding the production rule count (from flow
  stats) recovers the total.

:class:`DriftDetector` complements this: by comparing a freshly probed
model against the stored TangoDB model, the controller notices when a
firmware update or mode change silently altered a switch's properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.probing import ProbingEngine
from repro.openflow.errors import TableFullError
from repro.openflow.messages import FlowStatsRequest


@dataclass
class OnlineSizeResult:
    """Capacity view of a production switch."""

    production_rules: int
    free_capacity: Optional[int]  # None = never rejected (software tables)
    probe_rules_used: int

    @property
    def total_capacity(self) -> Optional[int]:
        """Total bounded capacity, or None for unbounded switches."""
        if self.free_capacity is None:
            return None
        return self.production_rules + self.free_capacity


class OnlineSizeProber:
    """Measures free and total capacity without disrupting production.

    The probe installs disposable rules until the switch rejects one
    (free capacity) or a cap is reached (unbounded software tables), then
    deletes every probe rule.  Production rules are never touched and no
    data traffic is sent, so the impact is limited to transient table
    occupancy -- suitable for maintenance windows.

    Args:
        engine: probing engine bound to the production switch.
        max_probe_rules: cap for switches that never reject.
        probe_priority: priority for probe rules; keep it *below*
            production priorities so probe adds never shift them.
    """

    def __init__(
        self,
        engine: ProbingEngine,
        max_probe_rules: int = 8192,
        probe_priority: int = 1,
    ) -> None:
        if max_probe_rules <= 0:
            raise ValueError("max_probe_rules must be positive")
        self.engine = engine
        self.max_probe_rules = max_probe_rules
        self.probe_priority = probe_priority

    def probe(self) -> OnlineSizeResult:
        """Measure free capacity; leaves the switch as it was found."""
        stats = self.engine.channel.request_flow_stats(FlowStatsRequest())
        production = len(stats.entries)

        free: Optional[int] = None
        installed = 0
        try:
            while installed < self.max_probe_rules:
                handle = self.engine.new_handle(priority=self.probe_priority)
                try:
                    self.engine.install_flow(handle)
                except TableFullError:
                    free = installed
                    break
                installed += 1
        finally:
            self.engine.remove_all_flows()

        result = OnlineSizeResult(
            production_rules=production,
            free_capacity=free,
            probe_rules_used=installed,
        )
        self.engine.scores.put(
            self.engine.switch_name,
            "online_size_probe",
            result,
            recorded_at_ms=self.engine.now_ms,
            source="online_size_prober",
        )
        return result


@dataclass(frozen=True)
class DriftFinding:
    """One property that changed between two probed models."""

    property_path: str
    before: Any
    after: Any


class DriftDetector:
    """Compares two inferred-model summaries (``to_dict`` payloads).

    Args:
        size_tolerance: relative layer-size change below which two
            estimates count as equal (inference noise, not drift).
        latency_tolerance: relative latency-curve coefficient change
            treated as noise.
    """

    def __init__(
        self, size_tolerance: float = 0.05, latency_tolerance: float = 0.25
    ) -> None:
        self.size_tolerance = size_tolerance
        self.latency_tolerance = latency_tolerance

    def _relative_change(self, before: float, after: float) -> float:
        if before == after:
            return 0.0
        scale = max(abs(before), abs(after), 1e-12)
        return abs(after - before) / scale

    def compare_models(self, before: Any, after: Any) -> List[DriftFinding]:
        """Like :meth:`compare`, accepting models or summary dicts.

        Convenience for the fleet model cache
        (:meth:`repro.core.fleet.ModelCache.invalidate_if_drifted`):
        either argument may be an
        :class:`~repro.core.inference.InferredSwitchModel` (its
        ``to_dict`` summary is taken) or an already-serialised summary.
        Switch names are ignored -- only measured properties count.
        """
        before_summary = before.to_dict() if hasattr(before, "to_dict") else before
        after_summary = after.to_dict() if hasattr(after, "to_dict") else after
        return self.compare(before_summary, after_summary)

    def compare(
        self, before: Dict[str, Any], after: Dict[str, Any]
    ) -> List[DriftFinding]:
        """All material differences between two model summaries."""
        findings: List[DriftFinding] = []

        old_layers = before.get("layers", [])
        new_layers = after.get("layers", [])
        if len(old_layers) != len(new_layers):
            findings.append(
                DriftFinding("layers.count", len(old_layers), len(new_layers))
            )
        for index, (old, new) in enumerate(zip(old_layers, new_layers)):
            old_size, new_size = old.get("size"), new.get("size")
            if (old_size is None) != (new_size is None):
                findings.append(
                    DriftFinding(f"layers[{index}].size", old_size, new_size)
                )
            elif old_size is not None and (
                self._relative_change(old_size, new_size) > self.size_tolerance
            ):
                findings.append(
                    DriftFinding(f"layers[{index}].size", old_size, new_size)
                )

        old_policy = before.get("policy")
        new_policy = after.get("policy")
        if old_policy != new_policy and (old_policy or new_policy):
            findings.append(DriftFinding("policy", old_policy, new_policy))

        old_behavior = before.get("behavior", {}).get("traffic_driven_caching")
        new_behavior = after.get("behavior", {}).get("traffic_driven_caching")
        if old_behavior != new_behavior:
            findings.append(
                DriftFinding("behavior.traffic_driven_caching", old_behavior, new_behavior)
            )

        old_curves = before.get("latency_curves", {})
        new_curves = after.get("latency_curves", {})
        # A coefficient only matters through its impact on a realistic
        # batch; tiny quadratic terms fitted onto essentially-linear
        # curves are regression noise, not drift.
        reference_n = 500
        for key in sorted(set(old_curves) & set(new_curves)):
            for coefficient in ("linear_ms", "quadratic_ms"):
                old_value = old_curves[key][coefficient]
                new_value = new_curves[key][coefficient]
                if self._relative_change(old_value, new_value) <= self.latency_tolerance:
                    continue
                if coefficient == "linear_ms":
                    if max(abs(old_value), abs(new_value)) <= 1e-2:
                        continue
                else:
                    quad_impact = max(abs(old_value), abs(new_value)) * reference_n**2
                    linear_impact = (
                        max(
                            abs(old_curves[key]["linear_ms"]),
                            abs(new_curves[key]["linear_ms"]),
                        )
                        * reference_n
                    )
                    if quad_impact < 0.15 * (linear_impact + 1.0):
                        continue
                findings.append(
                    DriftFinding(
                        f"latency_curves[{key}].{coefficient}",
                        old_value,
                        new_value,
                    )
                )
        return findings
