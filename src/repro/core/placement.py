"""Flow placement across diverse switches.

Section 1 of the paper: "comparing across switches, Tango records that
insertion into the flow table of the hardware switch is substantially
slower than into that of the software switch.  Hence, when Tango needs
to install a low-bandwidth flow where start up latency is more
important, Tango will put the flow at the software switch, instead of
the hardware switch."

:class:`FlowPlacer` makes that decision from inferred switch models: a
flow's total cost on a switch is its rule-installation latency (from the
measured latency curves, at the switch's current fill level) plus its
expected forwarding cost (fast-tier RTT from the size probe, times the
expected packet volume).  Low-volume, setup-critical flows land on
software switches; high-volume flows pay the install cost once and ride
the hardware fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.inference import InferredSwitchModel
from repro.core.latency_curves import PriorityPattern
from repro.openflow.messages import FlowModCommand


@dataclass(frozen=True)
class FlowRequirements:
    """What the application tells Tango about a flow (API hints).

    Args:
        expected_packets: forwarding volume over the flow's lifetime.
        setup_weight: relative importance of rule-installation latency
            (1.0 = a millisecond of setup hurts as much as a millisecond
            of cumulative forwarding delay).
    """

    expected_packets: float
    setup_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.expected_packets < 0:
            raise ValueError("expected_packets must be non-negative")
        if self.setup_weight < 0:
            raise ValueError("setup_weight must be non-negative")


@dataclass(frozen=True)
class PlacementScore:
    """Cost breakdown of placing a flow on one switch."""

    switch: str
    install_ms: float
    per_packet_ms: float
    total_ms: float


class FlowPlacer:
    """Chooses a switch for each flow from inferred cost models.

    Args:
        models: inferred models of the candidate switches (must contain
            latency curves; size-probe clusters supply the forwarding
            RTT, with a fallback for models probed without one).
    """

    def __init__(self, models: Sequence[InferredSwitchModel]) -> None:
        if not models:
            raise ValueError("need at least one switch model")
        self._models: Dict[str, InferredSwitchModel] = {m.name: m for m in models}

    def _install_ms(self, model: InferredSwitchModel, fill_level: int) -> float:
        curve = model.latency_curves.get(
            (FlowModCommand.ADD, PriorityPattern.ASCENDING)
        )
        if curve is None:
            return 1.0
        return curve.per_op_ms(fill_level)

    @staticmethod
    def _fast_rtt_ms(model: InferredSwitchModel) -> float:
        if model.size_probe is not None and model.size_probe.clusters:
            return model.size_probe.clusters[0].mean_ms
        return 1.0

    def score(
        self,
        switch: str,
        requirements: FlowRequirements,
        fill_level: int = 0,
    ) -> PlacementScore:
        """Cost of placing the flow on ``switch``."""
        model = self._models[switch]
        install = self._install_ms(model, fill_level)
        per_packet = self._fast_rtt_ms(model)
        total = (
            requirements.setup_weight * install
            + requirements.expected_packets * per_packet
        )
        return PlacementScore(
            switch=switch,
            install_ms=install,
            per_packet_ms=per_packet,
            total_ms=total,
        )

    def place(
        self,
        requirements: FlowRequirements,
        candidates: Optional[Sequence[str]] = None,
        fill_levels: Optional[Dict[str, int]] = None,
    ) -> PlacementScore:
        """The cheapest placement among ``candidates`` (default: all)."""
        names = list(candidates) if candidates is not None else list(self._models)
        unknown = [n for n in names if n not in self._models]
        if unknown:
            raise KeyError(f"no inferred model for switches {unknown}")
        fill_levels = fill_levels or {}
        scores = [
            self.score(name, requirements, fill_level=fill_levels.get(name, 0))
            for name in names
        ]
        return min(scores, key=lambda s: (s.total_ms, s.switch))

    def crossover_packets(self, software: str, hardware: str) -> float:
        """Packet volume where the hardware switch becomes the better home.

        Below this volume the software switch's cheap installs win;
        above it the hardware fast path amortises its install cost.
        Returns ``inf`` when the hardware switch never wins.
        """
        soft = self.score(software, FlowRequirements(expected_packets=0))
        hard = self.score(hardware, FlowRequirements(expected_packets=0))
        forwarding_gain = soft.per_packet_ms - hard.per_packet_ms
        install_penalty = hard.install_ms - soft.install_ms
        if forwarding_gain <= 0:
            return float("inf") if install_penalty > 0 else 0.0
        return max(0.0, install_penalty / forwarding_gain)
