"""Flow placement across diverse switches.

Section 1 of the paper: "comparing across switches, Tango records that
insertion into the flow table of the hardware switch is substantially
slower than into that of the software switch.  Hence, when Tango needs
to install a low-bandwidth flow where start up latency is more
important, Tango will put the flow at the software switch, instead of
the hardware switch."

:class:`FlowPlacer` makes that decision from inferred switch models: a
flow's total cost on a switch is its rule-installation latency (from the
measured latency curves, at the switch's current fill level) plus its
expected forwarding cost (fast-tier RTT from the size probe, times the
expected packet volume).  Low-volume, setup-critical flows land on
software switches; high-volume flows pay the install cost once and ride
the hardware fast path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.inference import InferredSwitchModel
from repro.core.latency_curves import PriorityPattern
from repro.core.requests import RequestDag
from repro.openflow.messages import FlowModCommand


@dataclass(frozen=True)
class FlowRequirements:
    """What the application tells Tango about a flow (API hints).

    Args:
        expected_packets: forwarding volume over the flow's lifetime.
        setup_weight: relative importance of rule-installation latency
            (1.0 = a millisecond of setup hurts as much as a millisecond
            of cumulative forwarding delay).
    """

    expected_packets: float
    setup_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.expected_packets < 0:
            raise ValueError("expected_packets must be non-negative")
        if self.setup_weight < 0:
            raise ValueError("setup_weight must be non-negative")


@dataclass(frozen=True)
class PlacementScore:
    """Cost breakdown of placing a flow on one switch."""

    switch: str
    install_ms: float
    per_packet_ms: float
    total_ms: float


class FlowPlacer:
    """Chooses a switch for each flow from inferred cost models.

    Args:
        models: inferred models of the candidate switches (must contain
            latency curves; size-probe clusters supply the forwarding
            RTT, with a fallback for models probed without one).
    """

    def __init__(self, models: Sequence[InferredSwitchModel]) -> None:
        if not models:
            raise ValueError("need at least one switch model")
        self._models: Dict[str, InferredSwitchModel] = {m.name: m for m in models}

    def _install_ms(self, model: InferredSwitchModel, fill_level: int) -> float:
        curve = model.latency_curves.get(
            (FlowModCommand.ADD, PriorityPattern.ASCENDING)
        )
        if curve is None:
            return 1.0
        return curve.per_op_ms(fill_level)

    @staticmethod
    def _fast_rtt_ms(model: InferredSwitchModel) -> float:
        if model.size_probe is not None and model.size_probe.clusters:
            return model.size_probe.clusters[0].mean_ms
        return 1.0

    def score(
        self,
        switch: str,
        requirements: FlowRequirements,
        fill_level: int = 0,
    ) -> PlacementScore:
        """Cost of placing the flow on ``switch``."""
        model = self._models[switch]
        install = self._install_ms(model, fill_level)
        per_packet = self._fast_rtt_ms(model)
        total = (
            requirements.setup_weight * install
            + requirements.expected_packets * per_packet
        )
        return PlacementScore(
            switch=switch,
            install_ms=install,
            per_packet_ms=per_packet,
            total_ms=total,
        )

    def place(
        self,
        requirements: FlowRequirements,
        candidates: Optional[Sequence[str]] = None,
        fill_levels: Optional[Dict[str, int]] = None,
    ) -> PlacementScore:
        """The cheapest placement among ``candidates`` (default: all)."""
        names = list(candidates) if candidates is not None else list(self._models)
        unknown = [n for n in names if n not in self._models]
        if unknown:
            raise KeyError(f"no inferred model for switches {unknown}")
        fill_levels = fill_levels or {}
        scores = [
            self.score(name, requirements, fill_level=fill_levels.get(name, 0))
            for name in names
        ]
        return min(scores, key=lambda s: (s.total_ms, s.switch))

    def crossover_packets(self, software: str, hardware: str) -> float:
        """Packet volume where the hardware switch becomes the better home.

        Below this volume the software switch's cheap installs win;
        above it the hardware fast path amortises its install cost.
        Returns ``inf`` when the hardware switch never wins.
        """
        soft = self.score(software, FlowRequirements(expected_packets=0))
        hard = self.score(hardware, FlowRequirements(expected_packets=0))
        forwarding_gain = soft.per_packet_ms - hard.per_packet_ms
        install_penalty = hard.install_ms - soft.install_ms
        if forwarding_gain <= 0:
            return float("inf") if install_penalty > 0 else 0.0
        return max(0.0, install_penalty / forwarding_gain)


# -- topology tiers and shard partitioning -------------------------------------
class SwitchTier(enum.Enum):
    """Fat-tree topology tier of a switch (core / aggregation / edge).

    The tiered-controller pattern from the SDN survey literature: work
    local to one pod (one tier slice) is embarrassingly parallel, and
    only cross-tier dependencies need synchronisation.  The sharded
    fleet engine's ``tier`` partition strategy keeps same-tier switches
    on the same worker, and :func:`cut_dag` turns cross-shard request
    edges into explicit barrier points.
    """

    CORE = "core"
    AGGREGATION = "aggregation"
    EDGE = "edge"


#: Name-prefix conventions recognised by :func:`assign_tier`.  Matching
#: is on the name stem (lowercased, before any ``#N`` fleet suffix).
TIER_NAME_PREFIXES: Tuple[Tuple[str, SwitchTier], ...] = (
    ("core", SwitchTier.CORE),
    ("spine", SwitchTier.CORE),
    ("aggr", SwitchTier.AGGREGATION),
    ("agg", SwitchTier.AGGREGATION),
    ("pod", SwitchTier.AGGREGATION),
    ("distribution", SwitchTier.AGGREGATION),
)

#: Partition order: core switches first, then aggregation, then edge,
#: so tier-aware chunking keeps each tier contiguous.
_TIER_RANKS: Tuple[SwitchTier, ...] = (
    SwitchTier.CORE,
    SwitchTier.AGGREGATION,
    SwitchTier.EDGE,
)


def assign_tier(name: str) -> SwitchTier:
    """The topology tier a switch name implies (default: edge).

    Deterministic and purely lexical: ``core-3`` and ``spine7`` are
    core, ``aggr-1``/``agg2``/``pod0-sw``/``distribution-a`` are
    aggregation, everything else -- including every vendor profile
    name -- is an edge switch.  The fleet's ``name#2`` duplicate
    suffixes are stripped before matching.
    """
    stem = name.split("#", 1)[0].strip().lower()
    for prefix, tier in TIER_NAME_PREFIXES:
        if stem.startswith(prefix):
            return tier
    return SwitchTier.EDGE


def tier_counts(names: Sequence[str]) -> Dict[SwitchTier, int]:
    """How many of ``names`` fall in each tier (all tiers present)."""
    counts = {tier: 0 for tier in _TIER_RANKS}
    for name in names:
        counts[assign_tier(name)] += 1
    return counts


def partition_names(
    names: Sequence[str], shards: int, strategy: str = "round_robin"
) -> List[List[int]]:
    """Split member indices ``0..len(names)-1`` into ``shards`` groups.

    Strategies:

    * ``round_robin`` -- index ``i`` goes to shard ``i % shards``;
      tier-blind, maximally balanced.
    * ``tier`` -- names are stably ordered core -> aggregation -> edge
      and dealt out in balanced contiguous chunks, so each shard holds
      (mostly) one tier's pod-local work and cross-tier edges land on
      as few shard boundaries as possible.

    Groups come back sorted by member index (the sharded fleet engine
    relies on ascending order so the global single-flight leader of a
    fingerprint is the lowest-indexed member, exactly as in the
    single-queue engine).  Empty groups are kept so the caller can see
    ``shards > len(names)``.
    """
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(
            f"unknown partition strategy {strategy!r}; "
            f"known: {sorted(PARTITION_STRATEGIES)}"
        )
    groups: List[List[int]] = [[] for _ in range(shards)]
    if strategy == "round_robin":
        for index in range(len(names)):
            groups[index % shards].append(index)
        return groups
    rank = {tier: position for position, tier in enumerate(_TIER_RANKS)}
    ordered = sorted(
        range(len(names)), key=lambda index: (rank[assign_tier(names[index])], index)
    )
    total = len(ordered)
    base, extra = divmod(total, shards)
    start = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        groups[shard] = sorted(ordered[start : start + size])
        start += size
    return groups


#: Partition strategies :func:`partition_names` understands (also the
#: ``tango-probe infer --partition`` choices).
PARTITION_STRATEGIES: Tuple[str, ...] = ("round_robin", "tier")


@dataclass(frozen=True)
class DagCut:
    """A request DAG cut along a switch-to-shard assignment.

    ``request_shard`` maps request id -> shard; ``local_edges`` stay
    inside one shard and ``barrier_edges`` cross shards -- the explicit
    synchronisation points a sharded scheduler must honor.  ``waves``
    maps each request to its barrier depth: requests of wave ``w`` may
    only be dispatched once every wave ``< w`` predecessor reachable
    over a barrier edge has completed, while same-wave work is
    shard-local and embarrassingly parallel.
    """

    shards: int
    request_shard: Mapping[int, int]
    local_edges: Tuple[Tuple[int, int], ...]
    barrier_edges: Tuple[Tuple[int, int], ...]
    waves: Mapping[int, int] = field(default_factory=dict)

    @property
    def barrier_count(self) -> int:
        return len(self.barrier_edges)

    @property
    def max_wave(self) -> int:
        return max(self.waves.values(), default=0)

    def wave_members(self) -> List[List[int]]:
        """Request ids grouped by wave, each group in id order."""
        groups: List[List[int]] = [[] for _ in range(self.max_wave + 1)]
        for request_id in sorted(self.waves):
            groups[self.waves[request_id]].append(request_id)
        return groups


def cut_dag(dag: RequestDag, shard_of: Mapping[str, int]) -> DagCut:
    """Cut a request DAG so cross-shard edges become barrier points.

    ``shard_of`` maps switch (location) name -> shard index; every
    location in the DAG must be assigned.  The wave of a request is the
    number of barrier edges on its longest dependency path: an edge
    within one shard never raises the wave (the shard's own scheduler
    orders it), a cross-shard edge raises it by one.
    """
    request_shard: Dict[int, int] = {}
    for request in dag.requests:
        shard = shard_of.get(request.location)
        if shard is None:
            raise KeyError(
                f"switch {request.location!r} has no shard assignment"
            )
        request_shard[request.request_id] = shard
    local: List[Tuple[int, int]] = []
    barriers: List[Tuple[int, int]] = []
    for parent, child in dag.edge_ids():
        if request_shard[parent] == request_shard[child]:
            local.append((parent, child))
        else:
            barriers.append((parent, child))
    waves: Dict[int, int] = {}
    for request_id in dag.topological_order():
        wave = 0
        for parent in dag.predecessor_ids(request_id):
            crossed = request_shard[parent] != request_shard[request_id]
            wave = max(wave, waves[parent] + (1 if crossed else 0))
        waves[request_id] = wave
    shard_count = max(shard_of.values(), default=-1) + 1
    return DagCut(
        shards=shard_count,
        request_shard=request_shard,
        local_edges=tuple(local),
        barrier_edges=tuple(barriers),
        waves=waves,
    )
