"""Fleet-scale concurrent switch inference.

Tango's premise is probing *many diverse switches* and pooling the
results in a central score database (Section 4), yet one
:class:`~repro.core.inference.SwitchInferenceEngine` drives one switch.
This module scales inference out: a :class:`FleetInferenceEngine` runs N
per-switch engines *concurrently in virtual time* on the shared
:class:`~repro.sim.events.Simulator` event queue, so the fleet's virtual
makespan approaches the slowest single switch instead of the sum of all
of them.

Two mechanisms make fleets cheap:

* **Event-driven probe interleaving.**  Each member's inference runs as
  a resumable generator
  (:meth:`~repro.core.inference.SwitchInferenceEngine.infer_steps`);
  after every probe stage the driver charges the stage's virtual cost to
  the shared fleet clock and re-schedules the member, so independent
  switches overlap while per-switch probe code -- including fault retry
  backoff and disconnect holds on that member's local clocks -- is
  untouched.  A bounded ``max_in_flight`` knob admits members from a
  deterministic queue.
* **Profile-fingerprint model caching.**  An inferred model is memoised
  in TangoDB under a fingerprint of the switch profile's *behaviour*
  (layers, policy, latency models, cost model -- never the name) plus
  the inference configuration.  A fleet of K identical switches pays for
  ~one full probe run: later members hit the cache, and members admitted
  while a same-fingerprint probe is still in flight *coalesce* onto it
  (single-flight) instead of probing again.
  :class:`~repro.core.online_probing.DriftDetector` findings invalidate
  stale entries (:meth:`ModelCache.invalidate_if_drifted`).

**Determinism.**  Event ordering is the queue's ``(time, sequence)``
tie-break and every engine draws from its own seeded streams, so a fixed
(seed, fleet, fault plan) replays byte-for-byte -- and a single-member
fleet is bit-identical to today's sequential
``SwitchInferenceEngine.infer()``: same model, same per-switch TangoDB
records, same probe op counts.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.inference import InferredSwitchModel, SwitchInferenceEngine
from repro.core.online_probing import DriftDetector, DriftFinding
from repro.core.scores import TangoScoreDatabase
from repro.sim.events import Simulator
from repro.switches.profiles import SwitchProfile

#: Pseudo-switch name under which fleet-level TangoDB records live
#: (cached models, fleet run provenance).
FLEET_DB_SWITCH = "__fleet__"

#: TangoDB metric name for cached inferred models.
MODEL_CACHE_METRIC = "model_cache"


# -- profile fingerprinting ----------------------------------------------------
def _canonical(value: Any) -> Any:
    """A JSON-serialisable canonical form of profile components.

    Handles the (frozen) dataclasses that make up a
    :class:`~repro.switches.profiles.SwitchProfile` -- table layers,
    TCAM geometry, latency models, cost models, cache policies -- plus
    enums and plain containers.  Unknown objects fall back to their
    class name and sorted ``__dict__``, so a new latency model still
    fingerprints deterministically.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        payload: Dict[str, Any] = {"__type__": type(value).__name__}
        for f in dataclasses.fields(value):
            payload[f.name] = _canonical(getattr(value, f.name))
        return payload
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(value[key]) for key in sorted(value)}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    attrs = getattr(value, "__dict__", None)
    if attrs is not None:
        return {
            "__type__": type(value).__name__,
            **{str(key): _canonical(attrs[key]) for key in sorted(attrs)},
        }
    return repr(value)


def profile_fingerprint(profile: SwitchProfile, **config: Any) -> str:
    """A stable hex digest of a profile's behaviour plus probe config.

    The profile's ``name`` and declared ``true_layer_sizes`` are
    excluded: two switches that *behave* identically (same layers,
    policy, latency models, cost model) fingerprint identically
    regardless of labels, which is exactly when a cached model transfers.
    Inference knobs (``config``) are folded in so models probed under
    different accuracy targets or batch sizes never cross-contaminate.
    """
    payload = {
        "layers": _canonical(tuple(profile.layers)),
        "policy": _canonical(profile.policy),
        "layer_delays": _canonical(tuple(profile.layer_delays)),
        "control_path_delay": _canonical(profile.control_path_delay),
        "cost_model": _canonical(profile.cost_model),
        "is_ovs": profile.is_ovs,
        "config": _canonical(config),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- fleet membership ----------------------------------------------------------
@dataclass(frozen=True)
class FleetMember:
    """One switch in a fleet: a unique name, its profile, and a seed.

    ``seed`` ``None`` means "assigned by the fleet engine"
    (fleet seed + member index).  When ``name`` differs from the
    profile's vendor label, the member's engine runs against a renamed
    copy of the profile so TangoDB records and fault streams stay
    per-switch.
    """

    name: str
    profile: SwitchProfile
    seed: Optional[int] = None

    def named_profile(self) -> SwitchProfile:
        """The profile this member's engine should probe (renamed copy)."""
        if self.profile.name == self.name:
            return self.profile
        return dataclasses.replace(self.profile, name=self.name)


def build_fleet(
    profiles: Sequence[SwitchProfile], count: Optional[int] = None
) -> List[FleetMember]:
    """Fleet members cycling through ``profiles`` until ``count`` switches.

    Naming is deterministic: the first member of a given profile keeps
    the bare profile name (so a one-profile, one-switch fleet is
    byte-identical to a plain sequential probe), later duplicates get
    ``name#2``, ``name#3``, ...
    """
    if not profiles:
        raise ValueError("build_fleet needs at least one profile")
    total = count if count is not None else len(profiles)
    if total < 1:
        raise ValueError(f"fleet size must be positive, got {total}")
    members: List[FleetMember] = []
    uses: Dict[str, int] = {}
    for index in range(total):
        profile = profiles[index % len(profiles)]
        nth = uses.get(profile.name, 0) + 1
        uses[profile.name] = nth
        name = profile.name if nth == 1 else f"{profile.name}#{nth}"
        members.append(FleetMember(name=name, profile=profile))
    return members


# -- model cache ---------------------------------------------------------------
@dataclass
class CachedModel:
    """One memoised inference result with provenance.

    Stored in TangoDB under ``(FLEET_DB_SWITCH, MODEL_CACHE_METRIC,
    fingerprint=...)`` so caches survive across
    :class:`FleetInferenceEngine` instances that share a score database
    -- a controller restart re-uses earlier probe work.
    """

    fingerprint: str
    model: InferredSwitchModel
    origin: str
    recorded_at_ms: float = 0.0


class ModelCache:
    """Fingerprint-keyed memo of inferred switch models, in TangoDB.

    Args:
        scores: the score database that backs the cache.
        metrics: metrics registry for hit/miss/invalidation counters
            (defaults to the disabled registry).
    """

    def __init__(self, scores: TangoScoreDatabase, metrics=None) -> None:
        from repro.obs.metrics import NULL_METRICS

        self.scores = scores
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidations = 0
        self._m_hits = self.metrics.counter("fleet.cache_hits")
        self._m_misses = self.metrics.counter("fleet.cache_misses")
        self._m_invalidations = self.metrics.counter("fleet.cache_invalidations")

    def lookup(self, fingerprint: str) -> Optional[CachedModel]:
        """The cached entry for ``fingerprint``, counting hit or miss."""
        entry = self.scores.get(
            FLEET_DB_SWITCH, MODEL_CACHE_METRIC, fingerprint=fingerprint
        )
        if entry is None:
            self.misses += 1
            self._m_misses.inc()
            return None
        self.hits += 1
        self._m_hits.inc()
        return entry

    def peek(self, fingerprint: str) -> Optional[CachedModel]:
        """The cached entry without touching the hit/miss counters."""
        return self.scores.get(
            FLEET_DB_SWITCH, MODEL_CACHE_METRIC, fingerprint=fingerprint
        )

    def store(
        self,
        fingerprint: str,
        model: InferredSwitchModel,
        origin: str,
        recorded_at_ms: float = 0.0,
    ) -> CachedModel:
        """Memoise a freshly probed model under its fingerprint."""
        entry = CachedModel(
            fingerprint=fingerprint,
            model=model.clone_as(model.name),
            origin=origin,
            recorded_at_ms=recorded_at_ms,
        )
        self.scores.put(
            FLEET_DB_SWITCH,
            MODEL_CACHE_METRIC,
            entry,
            recorded_at_ms=recorded_at_ms,
            source=f"fleet:{origin}",
            fingerprint=fingerprint,
        )
        self.stores += 1
        return entry

    def invalidate(self, fingerprint: str) -> bool:
        """Drop a cached entry; True if one existed."""
        removed = self.scores.remove(
            FLEET_DB_SWITCH, MODEL_CACHE_METRIC, fingerprint=fingerprint
        )
        if removed:
            self.invalidations += 1
            self._m_invalidations.inc()
        return removed

    def invalidate_if_drifted(
        self,
        fingerprint: str,
        fresh: Any,
        detector: Optional[DriftDetector] = None,
    ) -> List[DriftFinding]:
        """Compare a fresh probe against the cached entry; drop it on drift.

        ``fresh`` is an :class:`InferredSwitchModel` or a ``to_dict``
        summary.  Returns the detector's findings; a non-empty list
        means the entry was stale (firmware update, mode change) and has
        been invalidated so the next fleet run re-probes.
        """
        entry = self.peek(fingerprint)
        if entry is None:
            return []
        detector = detector if detector is not None else DriftDetector()
        findings = detector.compare_models(entry.model, fresh)
        if findings:
            self.invalidate(fingerprint)
        return findings


# -- shared fleet-policy predicates --------------------------------------------
def coalescing_allowed(fault_injector: Any) -> bool:
    """Whether same-fingerprint probes may single-flight coalesce.

    With an active fault plan, fault streams are per switch *name*:
    each member must run its own probes, so coalescing is off (cache
    lookups of clean models stay on).  Shared by the event-driven
    :class:`FleetInferenceEngine` and the sharded engine
    (:class:`repro.core.shard.ShardedFleetEngine`), whose merge applies
    the same rule *across* shards.
    """
    if fault_injector is None:
        return True
    plan = getattr(fault_injector, "plan", None)
    return plan is not None and plan.is_noop()


def cache_store_allowed(model: InferredSwitchModel, fault_injector: Any) -> bool:
    """Whether a freshly probed model may seed the fingerprint cache.

    Only clean runs qualify: a degraded or faulted model must not be
    replicated fleet-wide.  Shared across both fleet engines so a
    worker-side probe and the in-process engine make the identical
    store decision.
    """
    if model.confidence < 1.0:
        return False
    return coalescing_allowed(fault_injector)


# -- fleet results -------------------------------------------------------------
@dataclass
class FleetMemberResult:
    """Outcome of one member's inference inside a fleet run."""

    name: str
    profile_name: str
    fingerprint: str
    model: InferredSwitchModel
    started_ms: float
    finished_ms: float
    cache_hit: bool
    coalesced: bool = False
    cache_origin: Optional[str] = None
    probe_ops: int = 0
    steps: Tuple[Tuple[str, float, float], ...] = ()

    @property
    def duration_ms(self) -> float:
        return self.finished_ms - self.started_ms

    @property
    def full_probe(self) -> bool:
        """True when this member actually ran every probe itself."""
        return not self.cache_hit and not self.coalesced


@dataclass
class FleetResult:
    """Outcome of a whole fleet inference run."""

    members: List[FleetMemberResult] = field(default_factory=list)
    makespan_ms: float = 0.0
    max_in_flight: Optional[int] = None

    def by_name(self, name: str) -> FleetMemberResult:
        for member in self.members:
            if member.name == name:
                return member
        raise KeyError(f"no fleet member named {name!r}")

    @property
    def models(self) -> Dict[str, InferredSwitchModel]:
        """Member name -> inferred model (insertion order = fleet order)."""
        return {member.name: member.model for member in self.members}

    @property
    def sequential_sum_ms(self) -> float:
        """Virtual time a one-at-a-time run of the same work would take."""
        return sum(member.duration_ms for member in self.members)

    @property
    def full_probe_runs(self) -> int:
        return sum(1 for member in self.members if member.full_probe)

    @property
    def cache_hits(self) -> int:
        return sum(1 for member in self.members if member.cache_hit)

    @property
    def coalesced_joins(self) -> int:
        return sum(1 for member in self.members if member.coalesced)

    @property
    def probe_ops(self) -> int:
        """Total deterministic probe ops over every full probe run."""
        return sum(member.probe_ops for member in self.members)

    @property
    def speedup(self) -> float:
        """Sequential-sum over makespan (1.0 when nothing overlapped)."""
        if self.makespan_ms <= 0.0:
            return 1.0
        return self.sequential_sum_ms / self.makespan_ms

    def summary(self) -> Dict[str, Any]:
        """A JSON-ready digest (CLI ``--json``, fleet provenance record)."""
        return {
            "members": len(self.members),
            "max_in_flight": self.max_in_flight,
            "makespan_ms": round(self.makespan_ms, 4),
            "sequential_sum_ms": round(self.sequential_sum_ms, 4),
            "speedup": round(self.speedup, 4),
            "full_probe_runs": self.full_probe_runs,
            "cache_hits": self.cache_hits,
            "coalesced_joins": self.coalesced_joins,
            "probe_ops": self.probe_ops,
            "per_member": [
                {
                    "name": member.name,
                    "profile": member.profile_name,
                    "started_ms": round(member.started_ms, 4),
                    "finished_ms": round(member.finished_ms, 4),
                    "source": (
                        f"cache:{member.cache_origin}"
                        if member.cache_hit
                        else (
                            f"coalesced:{member.cache_origin}"
                            if member.coalesced
                            else "probe"
                        )
                    ),
                }
                for member in self.members
            ],
        }


# -- the fleet engine ----------------------------------------------------------
class MemberDriver:
    """Steps one member's inference generator and meters its virtual cost.

    Public because both fleet drivers use it: the in-process
    :class:`FleetInferenceEngine` steps drivers on one shared event
    queue, and each :class:`repro.core.shard.ShardedFleetEngine` worker
    steps its shard's drivers on a shard-local queue.
    """

    def __init__(
        self, member: FleetMember, engine: SwitchInferenceEngine, include_policy: bool
    ) -> None:
        self.member = member
        self.engine = engine
        self._steps = engine.infer_steps(include_policy=include_policy)
        self._cost_seen = 0.0
        self.model: Optional[InferredSwitchModel] = None
        self.step_log: List[Tuple[str, float, float]] = []

    def advance(self, fleet_now_ms: float) -> Tuple[Optional[str], float, bool]:
        """Run the next probe stage; returns (stage, elapsed_ms, done).

        ``stage`` is ``None`` on the final (finalisation) step, which
        also captures the assembled model from ``StopIteration.value``.
        """
        done = False
        stage: Optional[str] = None
        try:
            stage = next(self._steps)
        except StopIteration as stop:
            self.model = stop.value
            done = True
        cost = self.engine.virtual_cost_ms()
        elapsed = cost - self._cost_seen
        self._cost_seen = cost
        if stage is not None:
            self.step_log.append((stage, fleet_now_ms, fleet_now_ms + elapsed))
        return stage, elapsed, done


class FleetInferenceEngine:
    """Concurrent, cache-aware inference over a fleet of switches.

    Args:
        members: fleet members (see :func:`build_fleet`), or bare
            profiles (each becomes a member named after the profile;
            names must end up unique).
        scores: shared Tango score database (fleet provenance and the
            model cache live here too).
        seed: base seed; member ``i`` defaults to ``seed + i``.
        max_in_flight: at most this many members probing concurrently
            (``None`` = unbounded).  Admission order is the member
            order, re-filled deterministically as members finish.
        use_cache: consult/populate the fingerprint model cache.
        drift_detector: detector used by :meth:`reprobe_member`
            (defaults to a fresh :class:`DriftDetector`).
        tracer / metrics: telemetry, threaded through every member
            engine; fleet spans read the shared fleet clock.
        fault_injector / retry_policy: forwarded to every member engine
            (fault decision streams are per switch *name*, so members
            fault independently; retry holds play out on each member's
            local probe clocks and lengthen only that member's stages).
        sanitizer: optional
            :class:`~repro.analysis.racecheck.RaceSanitizer`.  When set,
            the score database, metrics registry, and model cache are
            wrapped in access-logging proxies, the fleet simulator
            records event provenance, and every access is attributed to
            the member on whose behalf it ran -- feeding the TNG040
            tie-break race check.  ``None`` (the default) leaves the run
            byte-identical to an unsanitized one.
        remaining keyword knobs: forwarded to every member's
            :class:`SwitchInferenceEngine`.
    """

    def __init__(
        self,
        members: Sequence[Union[FleetMember, SwitchProfile]],
        scores: Optional[TangoScoreDatabase] = None,
        seed: int = 0,
        max_in_flight: Optional[int] = None,
        use_cache: bool = True,
        drift_detector: Optional[DriftDetector] = None,
        tracer=None,
        metrics=None,
        fault_injector=None,
        retry_policy=None,
        size_probe_max_rules: int = 8192,
        size_accuracy_target: float = 0.02,
        latency_batch_sizes: Tuple[int, ...] = (100, 400, 900, 1600),
        policy_cache_size: Optional[int] = None,
        sanitizer=None,
        telemetry=None,
    ) -> None:
        from repro.obs.metrics import NULL_METRICS
        from repro.obs.telemetry import NULL_TELEMETRY
        from repro.obs.trace import NULL_TRACER

        resolved: List[FleetMember] = []
        for item in members:
            if isinstance(item, FleetMember):
                resolved.append(item)
            else:
                resolved.append(FleetMember(name=item.name, profile=item))
        if not resolved:
            raise ValueError("a fleet needs at least one member")
        names = [member.name for member in resolved]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate fleet member names: {sorted(names)}")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError(f"max_in_flight must be positive, got {max_in_flight}")
        self.members = resolved
        self.scores = scores if scores is not None else TangoScoreDatabase()
        self.seed = seed
        self.max_in_flight = max_in_flight
        self.use_cache = use_cache
        self.drift_detector = (
            drift_detector if drift_detector is not None else DriftDetector()
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        self.sanitizer = sanitizer
        if sanitizer is not None:
            # Wrap shared state *before* anything captures a handle, so
            # member engines and the model cache all go through the
            # logging proxies.
            self.scores = sanitizer.wrap_scores(self.scores)
            self.metrics = sanitizer.wrap_metrics(self.metrics)
        self.engine_knobs: Dict[str, Any] = {
            "size_probe_max_rules": size_probe_max_rules,
            "size_accuracy_target": size_accuracy_target,
            "latency_batch_sizes": tuple(latency_batch_sizes),
            "policy_cache_size": policy_cache_size,
        }
        self.cache = ModelCache(self.scores, metrics=self.metrics)
        if sanitizer is not None:
            self.cache = sanitizer.wrap_cache(self.cache)
        self._fingerprints: Dict[str, str] = {}

    # -- helpers ---------------------------------------------------------------
    def member(self, name: str) -> FleetMember:
        for candidate in self.members:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no fleet member named {name!r}")

    def fingerprint_for(self, member: FleetMember, include_policy: bool = True) -> str:
        """The cache fingerprint this member resolves to."""
        return profile_fingerprint(
            member.profile, include_policy=include_policy, **self.engine_knobs
        )

    def _member_seed(self, index: int) -> int:
        member = self.members[index]
        return member.seed if member.seed is not None else self.seed + index

    def _build_engine(self, index: int) -> SwitchInferenceEngine:
        member = self.members[index]
        return SwitchInferenceEngine(
            member.named_profile(),
            scores=self.scores,
            seed=self._member_seed(index),
            tracer=self.tracer,
            metrics=self.metrics,
            fault_injector=self.fault_injector,
            retry_policy=self.retry_policy,
            **self.engine_knobs,
        )

    def _cache_store_allowed(self, model: InferredSwitchModel) -> bool:
        return cache_store_allowed(model, self.fault_injector)

    # -- the driver ------------------------------------------------------------
    def infer_fleet(self, include_policy: bool = True) -> FleetResult:
        """Infer every member; returns per-member models plus fleet stats.

        Virtual makespan is the shared fleet clock when the event queue
        drains: with an unbounded ``max_in_flight`` and an empty cache it
        approaches the slowest member's own probe time, and with a warm
        cache the cached members cost (virtual) nothing at all.
        """
        if self.sanitizer is not None:
            sim = self.sanitizer.make_simulator()
        else:
            sim = Simulator()
        fleet_clock = sim.clock
        results: Dict[str, FleetMemberResult] = {}
        pending = deque(range(len(self.members)))
        in_flight = 0
        # fingerprint -> names of members waiting on an in-flight probe
        waiters: Dict[str, List[Tuple[FleetMember, float]]] = {}
        leaders: Dict[str, str] = {}
        coalesce_ok = coalescing_allowed(self.fault_injector)

        self.metrics.counter("fleet.members").inc(len(self.members))

        def read_clock() -> float:
            return fleet_clock.now_ms

        def set_owner(name: str) -> None:
            # Attribute sanitized accesses to the member being driven.
            if self.sanitizer is not None:
                self.sanitizer.set_owner(name)

        def finish_member(result: FleetMemberResult) -> None:
            results[result.name] = result
            if self.telemetry.enabled:
                self.telemetry.emit(
                    fleet_clock.now_ms,
                    "fleet.member_ms",
                    result.duration_ms,
                    source=result.name,
                    outcome=(
                        "cache"
                        if result.cache_hit
                        else ("coalesced" if result.coalesced else "probe")
                    ),
                )
            if self.tracer.enabled:
                self.tracer.event(
                    "fleet.member_finish",
                    category="fleet",
                    clock=read_clock,
                    switch=result.name,
                    source=(
                        "cache"
                        if result.cache_hit
                        else ("coalesced" if result.coalesced else "probe")
                    ),
                    duration_ms=result.duration_ms,
                )

        def complete_from_cache(
            member: FleetMember,
            entry: CachedModel,
            started_ms: float,
            fingerprint: str,
            coalesced: bool,
        ) -> None:
            set_owner(member.name)
            now = fleet_clock.now_ms
            model = entry.model.clone_as(member.name)
            self.scores.put(
                member.name,
                "switch_model",
                model,
                recorded_at_ms=now,
                source=(
                    f"fleet_coalesced:{entry.origin}"
                    if coalesced
                    else f"fleet_cache:{entry.origin}"
                ),
            )
            finish_member(
                FleetMemberResult(
                    name=member.name,
                    profile_name=member.profile.name,
                    fingerprint=fingerprint,
                    model=model,
                    started_ms=started_ms,
                    finished_ms=now,
                    cache_hit=not coalesced,
                    coalesced=coalesced,
                    cache_origin=entry.origin,
                )
            )

        def complete_probe(
            driver: MemberDriver, started_ms: float, fingerprint: str
        ) -> None:
            nonlocal in_flight
            set_owner(driver.member.name)
            now = fleet_clock.now_ms
            assert driver.model is not None
            stored: Optional[CachedModel] = None
            if self.use_cache and self._cache_store_allowed(driver.model):
                stored = self.cache.store(
                    fingerprint, driver.model, driver.member.name, recorded_at_ms=now
                )
            self._fingerprints[driver.member.name] = fingerprint
            self.metrics.counter("fleet.full_probes").inc()
            finish_member(
                FleetMemberResult(
                    name=driver.member.name,
                    profile_name=driver.member.profile.name,
                    fingerprint=fingerprint,
                    model=driver.model,
                    started_ms=started_ms,
                    finished_ms=now,
                    cache_hit=False,
                    probe_ops=driver.engine.probe_ops(),
                    steps=tuple(driver.step_log),
                )
            )
            leaders.pop(fingerprint, None)
            joined = waiters.pop(fingerprint, [])
            if joined:
                entry = stored
                if entry is None:
                    entry = CachedModel(
                        fingerprint=fingerprint,
                        model=driver.model,
                        origin=driver.member.name,
                        recorded_at_ms=now,
                    )
                for waiting_member, waiting_started in joined:
                    self.metrics.counter("fleet.coalesced_joins").inc()
                    complete_from_cache(
                        waiting_member,
                        entry,
                        waiting_started,
                        fingerprint,
                        coalesced=True,
                    )
            in_flight -= 1
            admit()

        def step(driver: MemberDriver, started_ms: float, fingerprint: str) -> None:
            set_owner(driver.member.name)
            stage, elapsed, done = driver.advance(fleet_clock.now_ms)
            if self.telemetry.enabled and stage is not None:
                self.telemetry.observe_probe(
                    driver.member.name, stage, fleet_clock.now_ms, elapsed
                )
            if self.tracer.enabled and stage is not None:
                self.tracer.event(
                    "fleet.stage",
                    category="fleet",
                    clock=read_clock,
                    switch=driver.member.name,
                    stage=stage,
                    elapsed_ms=elapsed,
                )
            if done:
                sim.schedule(
                    elapsed, lambda: complete_probe(driver, started_ms, fingerprint)
                )
            else:
                sim.schedule(
                    elapsed, lambda: step(driver, started_ms, fingerprint)
                )

        def start_member(index: int) -> None:
            nonlocal in_flight
            member = self.members[index]
            set_owner(member.name)
            started_ms = fleet_clock.now_ms
            fingerprint = self.fingerprint_for(member, include_policy)
            self._fingerprints[member.name] = fingerprint
            if self.tracer.enabled:
                self.tracer.event(
                    "fleet.member_start",
                    category="fleet",
                    clock=read_clock,
                    switch=member.name,
                    profile=member.profile.name,
                )
            if self.use_cache:
                entry = self.cache.lookup(fingerprint)
                if entry is not None:
                    sim.call_soon(
                        lambda: complete_from_cache(
                            member, entry, started_ms, fingerprint, coalesced=False
                        )
                    )
                    return
                if coalesce_ok:
                    if fingerprint in leaders:
                        # Single-flight: join the in-flight probe of an
                        # identical switch instead of duplicating it.
                        waiters.setdefault(fingerprint, []).append(
                            (member, started_ms)
                        )
                        return
                    leaders[fingerprint] = member.name
            in_flight += 1
            driver = MemberDriver(member, self._build_engine(index), include_policy)
            sim.call_soon(lambda: step(driver, started_ms, fingerprint))

        def admit() -> None:
            # Cache hits and coalesced joins occupy no probe slot, so
            # the loop keeps draining past them until a slot fills.
            while pending and (
                self.max_in_flight is None or in_flight < self.max_in_flight
            ):
                start_member(pending.popleft())

        with self.tracer.span(
            "fleet.infer",
            category="fleet",
            clock=read_clock,
            members=len(self.members),
            max_in_flight=self.max_in_flight,
        ) as span:
            if self.telemetry.enabled:
                # Cadence sampling rides the fleet's own event queue; the
                # sampler is a pure read and re-arms only while workload
                # events remain, so the queue still drains and event
                # outcomes are untouched.
                self.telemetry.bind_simulator(sim)
            admit()
            makespan = sim.run()
            if self.telemetry.enabled:
                # The last sampler tick can fire after the last workload
                # event; the fleet makespan is the workload frontier
                # (identical to the drain time of a bare run), not the
                # sampler's final wake-up.
                makespan = max(result.finished_ms for result in results.values())
                self.telemetry.finish(makespan)
            span.set(
                makespan_ms=makespan,
                full_probes=sum(1 for r in results.values() if r.full_probe),
                cache_hits=sum(1 for r in results.values() if r.cache_hit),
            )

        ordered = [results[member.name] for member in self.members]
        result = FleetResult(
            members=ordered,
            makespan_ms=makespan,
            max_in_flight=self.max_in_flight,
        )
        self.metrics.gauge("fleet.makespan_ms").set(makespan)
        self.scores.put(
            FLEET_DB_SWITCH,
            "fleet_run",
            result.summary(),
            recorded_at_ms=makespan,
            source="fleet_engine",
            members=len(self.members),
        )
        return result

    # -- drift-driven invalidation ---------------------------------------------
    def reprobe_member(
        self, name: str, include_policy: bool = True
    ) -> Tuple[InferredSwitchModel, List[DriftFinding]]:
        """Freshly probe one member and drift-check its cached model.

        Runs the member's full inference sequentially (no cache), then
        compares the result against the cached entry for the member's
        fingerprint with this engine's :class:`DriftDetector`.  Drift
        findings invalidate the stale cache entry -- the next
        :meth:`infer_fleet` re-probes switches of that fingerprint while
        every other fingerprint stays cached.  Returns the fresh model
        and the findings (empty = cache still valid).
        """
        index = next(
            i for i, member in enumerate(self.members) if member.name == name
        )
        fingerprint = self.fingerprint_for(self.members[index], include_policy)
        model = self._build_engine(index).infer(include_policy=include_policy)
        findings = self.cache.invalidate_if_drifted(
            fingerprint, model, detector=self.drift_detector
        )
        if findings and self.tracer.enabled:
            self.tracer.event(
                "fleet.cache_invalidated",
                category="fleet",
                switch=name,
                findings=len(findings),
            )
        return model, findings


__all__ = [
    "FLEET_DB_SWITCH",
    "MODEL_CACHE_METRIC",
    "CachedModel",
    "FleetInferenceEngine",
    "FleetMember",
    "FleetMemberResult",
    "FleetResult",
    "MemberDriver",
    "ModelCache",
    "build_fleet",
    "cache_store_allowed",
    "coalescing_allowed",
    "profile_fingerprint",
]
