"""Priority assignment from rule-dependency DAGs.

ACL-style rule sets contain overlapping rules where one rule must be
matched in preference to another; installing them into a flow table
requires OpenFlow priorities consistent with those constraints.  The
paper (Section 7.1, following Maple [23]) derives two assignments from
the dependency graph:

* **Topological priorities** -- the minimum number of distinct priority
  values: rules at the same dependency depth share one priority (Table 2
  reports 64/38/33 distinct values for ~900-rule sets).
* **R priorities** -- a 1-to-1 assignment: every rule gets a unique
  priority that still satisfies all constraints.

Both are consumed by the scheduler experiments: fewer distinct
priorities means more same-priority adds, which hardware switches
install dramatically faster.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Tuple

import networkx as nx

from repro.core.requests import RequestDag


def _validate(dependencies: nx.DiGraph) -> None:
    if not nx.is_directed_acyclic_graph(dependencies):
        raise ValueError("rule dependency graph must be acyclic")


def assign_topological_priorities(
    dependencies: nx.DiGraph, step: int = 1, base: int = 1
) -> Dict[Hashable, int]:
    """Minimal distinct priorities: same dependency depth, same priority.

    An edge ``u -> v`` means rule ``u`` must take precedence over (have a
    strictly higher priority than) rule ``v``.  Each rule's priority is
    ``base + step * height``, where height is the longest path from the
    rule to any sink -- so all constraint edges strictly decrease.

    Args:
        dependencies: rule dependency DAG.
        step: spacing between adjacent priority levels.
        base: priority assigned to sink rules.
    """
    _validate(dependencies)
    heights: Dict[Hashable, int] = {}
    for node in reversed(list(nx.topological_sort(dependencies))):
        succ = list(dependencies.successors(node))
        heights[node] = 1 + max((heights[s] for s in succ), default=-1)
    return {node: base + step * height for node, height in heights.items()}


def assign_r_priorities(dependencies: nx.DiGraph, base: int = 1) -> Dict[Hashable, int]:
    """A 1-to-1 priority assignment satisfying all constraints.

    Rules are numbered in reverse topological order (sinks first), so
    every rule's priority exceeds all of its successors' priorities and
    every rule gets a unique value.
    """
    _validate(dependencies)
    priorities: Dict[Hashable, int] = {}
    counter = base
    for node in reversed(list(nx.topological_sort(dependencies))):
        priorities[node] = counter
        counter += 1
    return priorities


def distinct_priority_count(priorities: Dict[Hashable, int]) -> int:
    """Number of distinct priority values in an assignment."""
    return len(set(priorities.values()))


def enforce_topological_priorities(dag: RequestDag, base: int = 100_000) -> RequestDag:
    """Tango's *priority enforcement* (paper Figure 11).

    When applications specify only dependency constraints (no explicit
    priorities), Tango is free to choose the priorities itself.  It
    assigns the minimum number of distinct values -- one per dependency
    level -- so that as many additions as possible share a priority,
    which hardware switches install dramatically faster.

    Returns a new DAG with identical structure and rewritten priorities
    (dependent requests get strictly lower priorities than the requests
    they wait on).
    """
    levels = assign_topological_priorities(dag._graph, base=base)
    rewritten = RequestDag()
    by_id = {}
    for request in dag.requests:
        updated = dataclasses.replace(
            request, priority=levels[request.request_id]
        )
        rewritten.add_request(updated)
        by_id[request.request_id] = updated
    for first_id, then_id in dag._graph.edges():
        # The source DAG is already acyclic; skip the per-edge check.
        rewritten.add_dependency(by_id[first_id], by_id[then_id], check_cycle=False)
    return rewritten


def check_priorities(
    dependencies: nx.DiGraph, priorities: Dict[Hashable, int]
) -> List[Tuple[Hashable, Hashable]]:
    """Return the constraint edges violated by ``priorities`` (empty = valid)."""
    violations = []
    for u, v in dependencies.edges():
        if priorities[u] <= priorities[v]:
            violations.append((u, v))
    return violations
