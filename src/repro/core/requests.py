"""Switch requests and the switch-request DAG (paper Section 6).

A *switch request* is one rule operation targeted at one switch::

    req_elem = {'location': switch_id,
                'type':     add | del | mod,
                'priority': priority number or none,
                'rule parameters': match, action,
                'install_by': ms or best effort}

Requests may depend on each other (consistent-update ordering, barrier
priorities for negation); the dependencies form a directed acyclic graph
that the Tango scheduler consumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.openflow.actions import Action, OutputAction
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand


@dataclass(frozen=True)
class SwitchRequest:
    """One rule operation bound for one switch."""

    request_id: int
    location: str
    command: FlowModCommand
    match: Match
    priority: int = 0
    actions: Tuple[Action, ...] = (OutputAction(port=1),)
    install_by_ms: Optional[float] = None  # None = best effort

    def flow_mod(self) -> FlowMod:
        return FlowMod(
            command=self.command,
            match=self.match,
            priority=self.priority,
            actions=self.actions,
            install_by_ms=self.install_by_ms,
        )


class RequestDag:
    """A DAG of switch requests.

    An edge ``a -> b`` means request ``a`` must complete before ``b`` is
    issued (e.g. reverse-path consistent updates, or barrier rules that
    implement negation).
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._requests: Dict[int, SwitchRequest] = {}
        self._done: Set[int] = set()
        self._ids = itertools.count()

    # -- construction ---------------------------------------------------------
    def new_request(
        self,
        location: str,
        command: FlowModCommand,
        match: Match,
        priority: int = 0,
        actions: Tuple[Action, ...] = (OutputAction(port=1),),
        install_by_ms: Optional[float] = None,
        after: Iterable[SwitchRequest] = (),
    ) -> SwitchRequest:
        """Create and add a request, optionally dependent on ``after``."""
        request = SwitchRequest(
            request_id=next(self._ids),
            location=location,
            command=command,
            match=match,
            priority=priority,
            actions=actions,
            install_by_ms=install_by_ms,
        )
        self.add_request(request)
        for parent in after:
            self.add_dependency(parent, request)
        return request

    def add_request(self, request: SwitchRequest) -> None:
        if request.request_id in self._requests:
            raise ValueError(f"duplicate request id {request.request_id}")
        self._requests[request.request_id] = request
        self._graph.add_node(request.request_id)

    def add_dependency(
        self, first: SwitchRequest, then: SwitchRequest, check_cycle: bool = True
    ) -> None:
        """Require ``first`` to finish before ``then`` starts.

        Args:
            check_cycle: verify acyclicity after adding the edge.  Bulk
                constructors that add edges in a known topological order
                (e.g. ACL index order) may disable the per-edge check and
                call :meth:`validate_acyclic` once at the end.

        Raises:
            ValueError: if the edge would create a cycle (the upper layer
                must break dependency loops before scheduling).
        """
        self._graph.add_edge(first.request_id, then.request_id)
        if check_cycle and not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(first.request_id, then.request_id)
            raise ValueError("dependency would create a cycle")

    def validate_acyclic(self) -> None:
        """Raise ValueError if the dependency graph contains a cycle."""
        if not nx.is_directed_acyclic_graph(self._graph):
            raise ValueError("dependency graph contains a cycle")

    # -- scheduling queries --------------------------------------------------
    def __len__(self) -> int:
        return len(self._requests)

    @property
    def requests(self) -> List[SwitchRequest]:
        return list(self._requests.values())

    def pending(self) -> List[SwitchRequest]:
        return [r for rid, r in self._requests.items() if rid not in self._done]

    def is_done(self) -> bool:
        return len(self._done) == len(self._requests)

    def independent_requests(self) -> List[SwitchRequest]:
        """Pending requests whose dependencies have all completed."""
        ready = []
        for rid, request in self._requests.items():
            if rid in self._done:
                continue
            if all(p in self._done for p in self._graph.predecessors(rid)):
                ready.append(request)
        return ready

    def dependencies_of(self, request: SwitchRequest) -> List[SwitchRequest]:
        return [self._requests[p] for p in self._graph.predecessors(request.request_id)]

    def mark_done(self, request: SwitchRequest) -> None:
        if request.request_id not in self._requests:
            raise KeyError(f"unknown request {request.request_id}")
        self._done.add(request.request_id)

    def reset(self) -> None:
        """Forget completion state (to re-run the same DAG)."""
        self._done.clear()

    # -- structure metrics ----------------------------------------------------
    def critical_path_lengths(self) -> Dict[int, int]:
        """Longest path (in requests) from each node to any sink.

        Dionysus-style schedulers prioritise requests on long chains.
        """
        lengths: Dict[int, int] = {}
        for node in reversed(list(nx.topological_sort(self._graph))):
            succ = list(self._graph.successors(node))
            lengths[node] = 1 + max((lengths[s] for s in succ), default=0)
        return lengths

    def depth(self) -> int:
        """Number of levels in the DAG (1 = fully independent)."""
        if not self._requests:
            return 0
        return max(self.critical_path_lengths().values())
