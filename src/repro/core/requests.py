"""Switch requests and the switch-request DAG (paper Section 6).

A *switch request* is one rule operation targeted at one switch::

    req_elem = {'location': switch_id,
                'type':     add | del | mod,
                'priority': priority number or none,
                'rule parameters': match, action,
                'install_by': ms or best effort}

Requests may depend on each other (consistent-update ordering, barrier
priorities for negation); the dependencies form a directed acyclic graph
that the Tango scheduler consumes.

Scheduling queries are *incremental*: the DAG maintains a per-node
pending-predecessor counter and a ready set, so
:meth:`RequestDag.independent_requests` costs O(ready) and
:meth:`RequestDag.mark_done` costs O(out-degree) instead of rescanning
all V requests per round (which made chain-heavy DAGs quadratic).
:meth:`RequestDag.critical_path_lengths` is cached and invalidated on
structural mutation.  Lookahead schedulers that explore hypothetical
completion orders use :class:`ReadySimulation`, an undoable cursor over
the same counters that never copies the DAG.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.openflow.actions import Action, OutputAction
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand


@dataclass(frozen=True)
class SwitchRequest:
    """One rule operation bound for one switch."""

    request_id: int
    location: str
    command: FlowModCommand
    match: Match
    priority: int = 0
    actions: Tuple[Action, ...] = (OutputAction(port=1),)
    install_by_ms: Optional[float] = None  # None = best effort

    def flow_mod(self) -> FlowMod:
        return FlowMod(
            command=self.command,
            match=self.match,
            priority=self.priority,
            actions=self.actions,
            install_by_ms=self.install_by_ms,
        )


@dataclass
class DagOpCounters:
    """Algorithmic-work counters for the DAG's scheduling queries.

    These feed the scalability guard tests and the ``tango-bench``
    harness: they count *operations*, not wall time, so an accidental
    O(V*E)-per-round regression fails loudly and deterministically.

    Attributes:
        edge_visits: successor/predecessor edges touched while
            maintaining the ready set (``mark_done``, ``reset``).
        ready_yields: requests returned by ``independent_requests``.
    """

    edge_visits: int = 0
    ready_yields: int = 0

    def total(self) -> int:
        return self.edge_visits + self.ready_yields

    def clear(self) -> None:
        self.edge_visits = 0
        self.ready_yields = 0


class RequestDag:
    """A DAG of switch requests.

    An edge ``a -> b`` means request ``a`` must complete before ``b`` is
    issued (e.g. reverse-path consistent updates, or barrier rules that
    implement negation).
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._requests: Dict[int, SwitchRequest] = {}
        self._done: Set[int] = set()
        self._ids = itertools.count()
        # Incremental scheduling state: number of not-yet-done
        # predecessors per node, the set of ready (pending, unblocked)
        # nodes, and each node's insertion sequence (ready sets are
        # reported in insertion order, matching the historical scan).
        self._pending: Dict[int, int] = {}
        self._ready: Set[int] = set()
        self._seq: Dict[int, int] = {}
        self._critical_cache: Optional[Dict[int, int]] = None
        self.ops = DagOpCounters()

    # -- construction ---------------------------------------------------------
    def new_request(
        self,
        location: str,
        command: FlowModCommand,
        match: Match,
        priority: int = 0,
        actions: Tuple[Action, ...] = (OutputAction(port=1),),
        install_by_ms: Optional[float] = None,
        after: Iterable[SwitchRequest] = (),
    ) -> SwitchRequest:
        """Create and add a request, optionally dependent on ``after``."""
        request = SwitchRequest(
            request_id=next(self._ids),
            location=location,
            command=command,
            match=match,
            priority=priority,
            actions=actions,
            install_by_ms=install_by_ms,
        )
        self.add_request(request)
        for parent in after:
            self.add_dependency(parent, request)
        return request

    def add_request(self, request: SwitchRequest) -> None:
        if request.request_id in self._requests:
            raise ValueError(f"duplicate request id {request.request_id}")
        rid = request.request_id
        self._requests[rid] = request
        self._graph.add_node(rid)
        self._seq[rid] = len(self._seq)
        self._pending[rid] = 0
        self._ready.add(rid)
        self._critical_cache = None

    def add_dependency(
        self, first: SwitchRequest, then: SwitchRequest, check_cycle: bool = True
    ) -> None:
        """Require ``first`` to finish before ``then`` starts.

        Args:
            check_cycle: verify acyclicity after adding the edge.  Bulk
                constructors that add edges in a known topological order
                (e.g. ACL index order) may disable the per-edge check and
                call :meth:`validate_acyclic` once at the end.

        Raises:
            KeyError: either endpoint was never added to this DAG.
            ValueError: if the edge would create a cycle (the upper layer
                must break dependency loops before scheduling).
        """
        fid, tid = first.request_id, then.request_id
        if fid not in self._requests or tid not in self._requests:
            missing = fid if fid not in self._requests else tid
            raise KeyError(f"unknown request {missing}")
        if self._graph.has_edge(fid, tid):
            return  # idempotent: the constraint already holds
        self._graph.add_edge(fid, tid)
        blocked = fid not in self._done
        if blocked:
            self._pending[tid] += 1
            self._ready.discard(tid)
        if check_cycle and not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(fid, tid)
            if blocked:
                self._pending[tid] -= 1
                if self._pending[tid] == 0 and tid not in self._done:
                    self._ready.add(tid)
            raise ValueError("dependency would create a cycle")
        self._critical_cache = None

    def validate_acyclic(self) -> None:
        """Raise ValueError if the dependency graph contains a cycle."""
        if not nx.is_directed_acyclic_graph(self._graph):
            raise ValueError("dependency graph contains a cycle")

    # -- scheduling queries --------------------------------------------------
    def __len__(self) -> int:
        return len(self._requests)

    @property
    def requests(self) -> List[SwitchRequest]:
        return list(self._requests.values())

    def pending(self) -> List[SwitchRequest]:
        return [r for rid, r in self._requests.items() if rid not in self._done]

    def is_done(self) -> bool:
        return len(self._done) == len(self._requests)

    @property
    def done_ids(self) -> frozenset:
        """Ids of the requests already marked done (read-only snapshot)."""
        return frozenset(self._done)

    def independent_requests(self) -> List[SwitchRequest]:
        """Pending requests whose dependencies have all completed.

        O(ready log ready): the ready set is maintained incrementally by
        :meth:`mark_done`; the sort restores insertion order.
        """
        ready = sorted(self._ready, key=self._seq.__getitem__)
        self.ops.ready_yields += len(ready)
        return [self._requests[rid] for rid in ready]

    def dependencies_of(self, request: SwitchRequest) -> List[SwitchRequest]:
        return [self._requests[p] for p in self._graph.predecessors(request.request_id)]

    def successors_of(self, request: SwitchRequest) -> List[SwitchRequest]:
        """Requests that directly depend on ``request``."""
        return [self._requests[s] for s in self._graph.successors(request.request_id)]

    def predecessor_ids(self, request_id: int) -> List[int]:
        """Ids of the requests ``request_id`` directly depends on."""
        return list(self._graph.predecessors(request_id))

    def successor_ids(self, request_id: int) -> List[int]:
        """Ids of the requests that directly depend on ``request_id``."""
        return list(self._graph.successors(request_id))

    def edge_ids(self) -> List[Tuple[int, int]]:
        """All dependency edges as ``(first_id, then_id)`` pairs."""
        return list(self._graph.edges())

    def ready_after(self, done: Iterable[int]) -> List[SwitchRequest]:
        """Requests that would be ready if exactly ``done`` had completed.

        One O(V + E) pass over the DAG, independent of the live
        completion state; use :meth:`simulation` instead when exploring
        many hypothetical completion orders incrementally.
        """
        done_set = set(done)
        ready = []
        for rid, request in self._requests.items():
            if rid in done_set:
                continue
            if all(p in done_set for p in self._graph.predecessors(rid)):
                ready.append(request)
        return ready

    def simulation(self, done: Iterable[int] = ()) -> "ReadySimulation":
        """An undoable what-if completion cursor over this DAG."""
        return ReadySimulation(self, done)

    def mark_done(self, request: SwitchRequest) -> None:
        rid = request.request_id
        if rid not in self._requests:
            raise KeyError(f"unknown request {rid}")
        if rid in self._done:
            return  # idempotent, and the counters must not double-decrement
        self._done.add(rid)
        self._ready.discard(rid)
        pending = self._pending
        for succ in self._graph.successors(rid):
            self.ops.edge_visits += 1
            pending[succ] -= 1
            if pending[succ] == 0 and succ not in self._done:
                self._ready.add(succ)

    def reset(self) -> None:
        """Forget completion state (to re-run the same DAG)."""
        self._done.clear()
        self._rebuild_ready()

    def _rebuild_ready(self) -> None:
        """Recompute pending counters and the ready set from scratch."""
        done = self._done
        self._pending = {
            rid: sum(1 for p in self._graph.predecessors(rid) if p not in done)
            for rid in self._requests
        }
        self.ops.edge_visits += self._graph.number_of_edges()
        self._ready = {
            rid
            for rid, count in self._pending.items()
            if count == 0 and rid not in done
        }

    # -- structure metrics ----------------------------------------------------
    def is_acyclic(self) -> bool:
        """True when the dependency graph contains no cycle."""
        return bool(nx.is_directed_acyclic_graph(self._graph))

    def find_cycle_ids(self) -> List[int]:
        """Request ids forming one dependency cycle ([] when acyclic)."""
        try:
            cycle_edges = nx.find_cycle(self._graph)
        except nx.NetworkXNoCycle:
            return []
        return [edge[0] for edge in cycle_edges]

    def topological_order(self) -> List[int]:
        """Request ids in one (deterministic) topological order.

        Raises:
            networkx.NetworkXUnfeasible: the graph contains a cycle.
        """
        return list(nx.topological_sort(self._graph))

    def critical_path_lengths(self) -> Dict[int, int]:
        """Longest path (in requests) from each node to any sink.

        Dionysus-style schedulers prioritise requests on long chains.
        The result is cached until the DAG structure changes; callers
        receive a private copy.
        """
        if self._critical_cache is None:
            lengths: Dict[int, int] = {}
            for node in reversed(list(nx.topological_sort(self._graph))):
                succ = list(self._graph.successors(node))
                lengths[node] = 1 + max((lengths[s] for s in succ), default=0)
            self._critical_cache = lengths
        return dict(self._critical_cache)

    def depth(self) -> int:
        """Number of levels in the DAG (1 = fully independent)."""
        if not self._requests:
            return 0
        return max(self.critical_path_lengths().values())


class ReadySimulation:
    """Incremental what-if completion cursor over a :class:`RequestDag`.

    Lookahead schedulers (``PrefixTangoScheduler._plan``) explore a tree
    of hypothetical completion orders.  This cursor maintains the same
    pending-predecessor counters as the DAG itself, so completing a batch
    costs O(batch out-degree) and is undoable in the same time -- no
    frozenset unions, no O(V*E) rescans, and no mutation of the DAG.

    Usage::

        sim = dag.simulation()
        sim.complete([r.request_id for r in prefix])   # push a frame
        ...recurse on sim.ready()...
        sim.undo()                                     # pop the frame
        sim.commit([...])                              # permanent frame

    ``ready()`` reports requests in DAG insertion order, matching
    :meth:`RequestDag.independent_requests`.
    """

    def __init__(self, dag: RequestDag, done: Iterable[int] = ()) -> None:
        self._dag = dag
        self._done: Set[int] = set(done)
        graph = dag._graph
        self._pending = {
            rid: sum(1 for p in graph.predecessors(rid) if p not in self._done)
            for rid in dag._requests
        }
        self._ready = {
            rid
            for rid, count in self._pending.items()
            if count == 0 and rid not in self._done
        }
        self._frames: List[List[int]] = []
        # One O(V + E) pass to build the counters; charged to the DAG's
        # op counters like RequestDag._rebuild_ready.
        dag.ops.edge_visits += dag._graph.number_of_edges()

    @property
    def dag(self) -> RequestDag:
        """The underlying DAG (read-only; the cursor never mutates it)."""
        return self._dag

    @property
    def completed_count(self) -> int:
        """How many requests are (hypothetically) complete in this cursor."""
        return len(self._done)

    def is_completed(self, request_id: int) -> bool:
        """True when ``request_id`` is complete in this cursor's state."""
        return request_id in self._done

    def pending_predecessors(self, request_id: int) -> int:
        """Count of the request's dependencies still pending in the cursor."""
        return self._pending[request_id]

    def ready_ids(self) -> List[int]:
        """Ready request ids, in DAG insertion order."""
        ready = sorted(self._ready, key=self._dag._seq.__getitem__)
        self._dag.ops.ready_yields += len(ready)
        return ready

    def ready(self) -> List[SwitchRequest]:
        """Ready requests, in DAG insertion order."""
        requests = self._dag._requests
        return [requests[rid] for rid in self.ready_ids()]

    def is_done(self) -> bool:
        return len(self._done) == len(self._dag._requests)

    def _complete_one(self, rid: int) -> None:
        self._done.add(rid)
        self._ready.discard(rid)
        pending = self._pending
        ops = self._dag.ops
        for succ in self._dag._graph.successors(rid):
            ops.edge_visits += 1
            pending[succ] -= 1
            if pending[succ] == 0 and succ not in self._done:
                self._ready.add(succ)

    def complete(self, request_ids: Iterable[int]) -> None:
        """Hypothetically complete ``request_ids``; undoable via :meth:`undo`.

        Validates the whole batch before touching any state, so a raise
        leaves the cursor exactly as it was (no partial frame that
        :meth:`undo` could not revert).

        Raises:
            ValueError: a request is already (hypothetically) complete,
                or appears twice in ``request_ids``.
        """
        frame = list(request_ids)
        seen: set = set()
        for rid in frame:
            if rid in self._done or rid in seen:
                raise ValueError(f"request {rid} already completed in simulation")
            seen.add(rid)
        for rid in frame:
            self._complete_one(rid)
        self._frames.append(frame)

    def undo(self) -> None:
        """Revert the most recent :meth:`complete` frame.

        Raises:
            IndexError: no frame to undo.
        """
        frame = self._frames.pop()
        pending = self._pending
        ops = self._dag.ops
        for rid in reversed(frame):
            for succ in self._dag._graph.successors(rid):
                ops.edge_visits += 1
                pending[succ] += 1
                self._ready.discard(succ)
            self._done.discard(rid)
            if pending[rid] == 0:
                self._ready.add(rid)

    def commit(self, request_ids: Iterable[int]) -> None:
        """Complete ``request_ids`` permanently (no undo frame).

        Schedulers use this to keep a long-lived cursor in sync with the
        requests they actually issued, so per-round planning never pays
        an O(V + E) rebuild.
        """
        for rid in request_ids:
            if rid not in self._done:
                self._complete_one(rid)


def chain_requests(
    dag: RequestDag,
    specs: Sequence[Tuple[str, FlowModCommand, Match, int]],
) -> List[SwitchRequest]:
    """Add ``specs`` as a dependency chain (bulk, one final cycle check).

    Each spec is ``(location, command, match, priority)``; request *i*
    depends on request *i-1*.  Edges follow creation order, so acyclicity
    holds by construction and the per-edge check is skipped.
    """
    requests: List[SwitchRequest] = []
    previous: Optional[SwitchRequest] = None
    for location, command, match, priority in specs:
        request = dag.new_request(location, command, match, priority=priority)
        if previous is not None:
            dag.add_dependency(previous, request, check_cycle=False)
        previous = request
        requests.append(request)
    dag.validate_acyclic()
    return requests
