"""One-dimensional RTT clustering.

The size-probing pattern (Algorithm 1, stage 2) sends a probe packet per
installed flow and clusters the round-trip times; each cluster corresponds
to one flow-table layer (Figure 5 shows the three well-separated bands of
hardware switch #2).  Layers differ by milliseconds while within-layer
jitter is tens of microseconds, so a gap-based splitter is both simple
and robust.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Cluster:
    """One latency band (one flow-table layer)."""

    mean_ms: float
    lo_ms: float
    hi_ms: float
    count: int

    def contains(self, rtt_ms: float, margin_ms: float = 0.0) -> bool:
        return self.lo_ms - margin_ms <= rtt_ms <= self.hi_ms + margin_ms


def cluster_1d(
    values: Sequence[float],
    min_gap_ms: float = 0.5,
    min_cluster_fraction: float = 0.0,
) -> List[Cluster]:
    """Split sorted RTTs wherever consecutive values gap by > ``min_gap_ms``.

    Args:
        values: RTT samples in milliseconds.
        min_gap_ms: a gap larger than this separates two layers.  Layer
            latencies in the paper differ by >= ~1 ms while jitter is well
            under 0.5 ms, so the default cleanly separates tiers.
        min_cluster_fraction: clusters holding fewer than this fraction of
            samples are merged into their nearest neighbour (guards
            against a stray outlier founding a fake layer).

    Returns:
        Clusters sorted by ascending mean (fastest layer first).
    """
    if not values:
        return []
    ordered = sorted(values)
    groups: List[List[float]] = [[ordered[0]]]
    for value in ordered[1:]:
        if value - groups[-1][-1] > min_gap_ms:
            groups.append([value])
        else:
            groups[-1].append(value)

    if min_cluster_fraction > 0 and len(groups) > 1:
        threshold = min_cluster_fraction * len(ordered)
        merged: List[List[float]] = []
        for group in groups:
            if merged and len(group) < threshold:
                merged[-1].extend(group)
            elif not merged and len(group) < threshold and len(groups) > 1:
                # A tiny leading group merges forward instead.
                groups[1][:0] = group
            else:
                merged.append(group)
        groups = merged or groups

    return [
        Cluster(
            mean_ms=sum(g) / len(g),
            lo_ms=g[0],
            hi_ms=g[-1],
            count=len(g),
        )
        for g in groups
    ]


def assign_cluster(
    clusters: Sequence[Cluster], rtt_ms: float, margin_ms: float = 0.25
) -> Optional[int]:
    """Index of the cluster containing ``rtt_ms``, else nearest by mean.

    Returns ``None`` when the RTT is far (more than ``margin_ms``) outside
    every cluster's observed range -- e.g. a control-path RTT seen during
    sampling after the cache state shifted.
    """
    for index, cluster in enumerate(clusters):
        if cluster.contains(rtt_ms, margin_ms=margin_ms):
            return index
    return None
