"""The Tango controller facade.

:class:`Tango` wires together the architecture of Figure 4: the score
and pattern databases (TangoDB), the probing/inference engines, and the
network scheduler.  Applications register switches, let Tango infer
their properties, submit request DAGs, and get optimised installation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.inference import InferredSwitchModel, SwitchInferenceEngine
from repro.core.patterns import RewritePattern, TangoPatternDatabase
from repro.core.requests import RequestDag
from repro.core.requests import SwitchRequest
from repro.core.scheduler import (
    BasicTangoScheduler,
    ConcurrentTangoScheduler,
    NetworkExecutor,
    PrefixTangoScheduler,
    ScheduleResult,
)
from repro.core.scores import TangoScoreDatabase
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.trace import NULL_TRACER, Tracer
from repro.openflow.channel import ControlChannel
from repro.switches.base import SimulatedSwitch
from repro.switches.profiles import SwitchProfile


class Tango:
    """The Tango controller.

    Args:
        seed: base seed for all probing randomness.
        tracer: telemetry tracer threaded through probing engines,
            schedulers, and executors built by this controller.
        metrics: metrics registry threaded the same way.

    Example:
        >>> from repro.switches import SWITCH_2
        >>> tango = Tango(seed=1)
        >>> name = tango.register_profile(SWITCH_2)
        >>> model = tango.infer(name, include_policy=False)
        >>> model.fast_table_size is not None
        True
    """

    def __init__(
        self,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.scores = TangoScoreDatabase()
        self.patterns = TangoPatternDatabase()
        self._profiles: Dict[str, SwitchProfile] = {}
        self._switches: Dict[str, SimulatedSwitch] = {}
        self._channels: Dict[str, ControlChannel] = {}
        self._models: Dict[str, InferredSwitchModel] = {}

    # -- switch management ---------------------------------------------------
    def register_profile(
        self, profile: SwitchProfile, name: Optional[str] = None
    ) -> str:
        """Register a switch built from ``profile``; returns its name."""
        name = name or profile.name
        if name in self._switches:
            raise ValueError(f"switch {name!r} already registered")
        switch = profile.build(seed=self.seed + len(self._switches))
        self._profiles[name] = profile
        self._switches[name] = switch
        self._channels[name] = ControlChannel(switch)
        return name

    def register_switch(
        self, switch: SimulatedSwitch, profile: Optional[SwitchProfile] = None
    ) -> str:
        """Register an existing switch instance (e.g. shared with netem)."""
        name = switch.name
        if name in self._switches:
            raise ValueError(f"switch {name!r} already registered")
        self._switches[name] = switch
        self._channels[name] = ControlChannel(switch)
        if profile is not None:
            self._profiles[name] = profile
        return name

    @property
    def switch_names(self) -> List[str]:
        return list(self._switches.keys())

    def switch(self, name: str) -> SimulatedSwitch:
        return self._switches[name]

    def channel(self, name: str) -> ControlChannel:
        return self._channels[name]

    # -- inference ---------------------------------------------------------------
    def infer(
        self, name: str, include_policy: bool = True, **probe_kwargs
    ) -> InferredSwitchModel:
        """Probe a registered switch's profile and cache the model.

        Probing runs against fresh instances built from the profile (the
        paper's offline mode), leaving the production switch untouched.
        Extra keyword arguments (e.g. ``size_probe_max_rules``) are
        forwarded to :class:`SwitchInferenceEngine`.
        """
        profile = self._profiles.get(name)
        if profile is None:
            raise KeyError(
                f"switch {name!r} has no registered profile to probe offline"
            )
        engine = SwitchInferenceEngine(
            profile,
            scores=self.scores,
            seed=self.seed + hash(name) % 1000,
            tracer=self.tracer,
            metrics=self.metrics,
            **probe_kwargs,
        )
        model = engine.infer(include_policy=include_policy)
        self._models[name] = model
        return model

    def model(self, name: str) -> Optional[InferredSwitchModel]:
        return self._models.get(name)

    # -- scheduling -----------------------------------------------------------------
    def _executor(self) -> NetworkExecutor:
        return NetworkExecutor(
            self._channels, metrics=self.metrics, tracer=self.tracer
        )

    def _patterns_for(self, dag: RequestDag) -> List[RewritePattern]:
        """Measured per-switch patterns when available, else defaults."""
        locations = {r.location for r in dag.requests}
        measured: List[RewritePattern] = []
        for location in locations:
            model = self._models.get(location)
            if model is not None:
                measured.extend(model.rewrite_patterns())
        return measured or self.patterns.rewrite_patterns

    def make_scheduler(
        self, dag: RequestDag, variant: str = "basic", strict: bool = False
    ) -> BasicTangoScheduler:
        """Build a scheduler for ``dag`` using inferred switch knowledge.

        Args:
            dag: the request DAG about to be scheduled.
            variant: ``"basic"``, ``"prefix"``, or ``"concurrent"``.
            strict: statically verify the DAG before scheduling and
                raise :class:`~repro.analysis.DiagnosticError` on any
                ERROR diagnostic.
        """
        executor = self._executor()
        patterns = self._patterns_for(dag)
        telemetry = {"tracer": self.tracer, "metrics": self.metrics}
        if variant == "basic":
            return BasicTangoScheduler(
                executor, patterns=patterns, strict=strict, **telemetry
            )
        estimate = self._duration_estimator(dag)
        if variant == "prefix":
            return PrefixTangoScheduler(
                executor, estimate, patterns=patterns, strict=strict, **telemetry
            )
        if variant == "concurrent":
            return ConcurrentTangoScheduler(
                executor, estimate, patterns=patterns, strict=strict, **telemetry
            )
        raise ValueError(f"unknown scheduler variant {variant!r}")

    def _duration_estimator(self, dag: RequestDag):
        estimators = {
            name: model.duration_estimator()
            for name, model in self._models.items()
            if model.latency_curves
        }

        def estimate(request: SwitchRequest) -> float:
            estimator = estimators.get(request.location)
            return estimator(request) if estimator is not None else 1.0

        return estimate

    def schedule(
        self, dag: RequestDag, variant: str = "basic", strict: bool = False
    ) -> ScheduleResult:
        """Schedule and execute a request DAG against the registered switches.

        With ``strict=True`` the DAG is statically verified first
        (cycles, shadowed rules, deadline feasibility, ...) and
        execution aborts on ERROR diagnostics instead of issuing a
        single ``flow_mod``.
        """
        scheduler = self.make_scheduler(dag, variant=variant, strict=strict)
        return scheduler.schedule(dag)
