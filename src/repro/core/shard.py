"""Sharded fleet inference across worker processes.

The event-driven :class:`~repro.core.fleet.FleetInferenceEngine` runs
every member on one event queue in one process, which caps fleet scale
at a single core.  :class:`ShardedFleetEngine` partitions the fleet
across N workers -- each running its own
:class:`~repro.sim.events.Simulator`, shard-local
:class:`~repro.core.scores.TangoScoreDatabase`, and
:class:`~repro.core.fleet.ModelCache` -- and then merges the per-shard
event streams back into one byte-identical global record order.

**The merge protocol.**  Every worker-side event carries its *scheduling
chain*: the tuple of virtual times of its ancestor events, root first
(a member's first step is ``(0.0,)``; an event at time ``T`` that
schedules a follow-up ``elapsed`` later extends the chain with
``T + elapsed``).  In the single-queue engine, events are executed in
``(time, push sequence)`` heap order, and because every member is
admitted synchronously at time zero in member order, that order is
exactly the lexicographic order of ``(reversed(chain), member index)``
with Python's shorter-prefix-first tuple comparison.  The merge sorts
the union of all shards' event batches by that key and replays each
batch's TangoDB puts into the caller's database, so the merged record
stream -- values, timestamps, provenance, and *insertion order* -- is
byte-identical to a single-queue run of the whole fleet.  It follows
that a 1-shard run equals :class:`FleetInferenceEngine` exactly and a
fixed seed replays identically at every shard count and partition.

**Cross-shard single-flight.**  Shard-local coalescing stays on (a
worker never probes the same fingerprint twice), and the merge extends
it across shards: for each fingerprint the *global* leader is the
lowest-indexed cold member fleet-wide, duplicate leaders probed by
other shards are dropped (counted as cross-shard coalesce hits, their
probe ops as waste), and the leader's completion batch is resynthesized
with the global waiter set in member order -- the identical records a
single queue would have written.

**What sharding gives up.**  Admission is unbounded (``max_in_flight``
is meaningless across processes), and tracer/metrics/telemetry/
sanitizer hooks are not threaded through workers; use the single-queue
engine when those matter.  Everything crossing the worker boundary --
members, fault plans, retry policies, warm cache records, inferred
models -- travels by pickle, so the ``process`` backend is spawn-safe.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.fleet import (
    FLEET_DB_SWITCH,
    MODEL_CACHE_METRIC,
    CachedModel,
    FleetMember,
    FleetMemberResult,
    FleetResult,
    MemberDriver,
    ModelCache,
    cache_store_allowed,
    coalescing_allowed,
    profile_fingerprint,
)
from repro.core.inference import InferredSwitchModel, SwitchInferenceEngine
from repro.core.placement import PARTITION_STRATEGIES, partition_names
from repro.core.scores import ScoreKey, ScoreRecord, TangoScoreDatabase
from repro.faults.injector import FaultInjector
from repro.sim.events import Simulator
from repro.switches.profiles import SwitchProfile

#: Execution backends: ``inline`` runs every shard sequentially in this
#: process (deterministic tests, op-count benches); ``process`` fans out
#: over a ``multiprocessing`` pool.
SHARD_BACKENDS: Tuple[str, ...] = ("inline", "process")


class _JournalingScoreDatabase(TangoScoreDatabase):
    """A shard-local TangoDB that can journal the puts of one event.

    Workers wrap each event's action in ``start_journal`` /
    ``take_journal`` so every batch of records an event produced can be
    shipped back (with its scheduling chain) for the deterministic
    merge.  Outside a journal window, puts behave exactly as the base
    class -- warm-cache replay and local-waiter bookkeeping stay out of
    the shipped stream.
    """

    def __init__(self) -> None:
        super().__init__()
        self._journal: Optional[List[ScoreRecord]] = None

    def start_journal(self) -> None:
        self._journal = []

    def take_journal(self) -> List[ScoreRecord]:
        captured = self._journal if self._journal is not None else []
        self._journal = None
        return captured

    def put(
        self,
        switch: str,
        metric: str,
        value: Any,
        recorded_at_ms: float = 0.0,
        source: Optional[str] = None,
        **params: Any,
    ) -> ScoreKey:
        key = super().put(
            switch, metric, value, recorded_at_ms=recorded_at_ms,
            source=source, **params,
        )
        if self._journal is not None:
            record = self.get_by_key(key)
            assert record is not None
            self._journal.append(record)
        return key


@dataclass
class _EventBatch:
    """The TangoDB puts of one worker-side event, with its chain.

    ``chain`` is the event's scheduling-ancestor virtual times, root
    first; the merge sorts batches by ``(reversed(chain), member)``.
    """

    chain: Tuple[float, ...]
    records: Tuple[ScoreRecord, ...]


@dataclass
class _MemberOutcome:
    """One member's worker-side result, shipped back for the merge."""

    index: int  # global member index (the merge tie-break)
    name: str
    profile_name: str
    fingerprint: str
    kind: str = "leader"  # "leader" | "cache" | "waiter"
    model: Optional[InferredSwitchModel] = None
    cache_origin: Optional[str] = None
    finished_ms: float = 0.0
    probe_ops: int = 0
    steps: Tuple[Tuple[str, float, float], ...] = ()
    batches: List[_EventBatch] = field(default_factory=list)
    complete_chain: Tuple[float, ...] = ()
    store_record: Optional[ScoreRecord] = None


@dataclass
class _ShardTask:
    """Everything one worker needs; every field pickles."""

    shard_index: int
    indices: Tuple[int, ...]  # global member indices, ascending
    members: Tuple[FleetMember, ...]
    seed: int
    include_policy: bool
    use_cache: bool
    engine_knobs: Dict[str, Any]
    fault_plan: Any  # Optional[FaultPlan]
    retry_policy: Any
    cache_records: Tuple[ScoreRecord, ...]  # warm model-cache entries


@dataclass
class _ShardResult:
    """One worker's merged-protocol output."""

    shard_index: int
    outcomes: Tuple[_MemberOutcome, ...]
    makespan_ms: float
    events: int
    records: int


def _run_shard(task: _ShardTask) -> _ShardResult:
    """Run one shard's members on a private simulator and journal it.

    Module-level (not a closure) so the ``process`` backend can pickle
    it under the ``spawn`` start method.  This mirrors
    :meth:`FleetInferenceEngine.infer_fleet` exactly -- synchronous
    admission of every member at time zero, one zero-delay event per
    cache hit, a step-event chain per probing member -- minus the
    telemetry hooks and bounded admission the sharded engine does not
    support.
    """
    scores = _JournalingScoreDatabase()
    for record in task.cache_records:
        scores.put(
            record.key.switch,
            record.key.metric,
            record.value,
            recorded_at_ms=record.recorded_at_ms,
            source=record.source,
            **dict(record.key.params),
        )
    cache = ModelCache(scores)
    injector = (
        FaultInjector(task.fault_plan) if task.fault_plan is not None else None
    )
    coalesce_ok = coalescing_allowed(injector)
    sim = Simulator()
    clock = sim.clock
    outcomes: Dict[int, _MemberOutcome] = {}
    leaders: Dict[str, int] = {}

    def build_engine(member: FleetMember, seed: int) -> SwitchInferenceEngine:
        return SwitchInferenceEngine(
            member.named_profile(),
            scores=scores,
            seed=seed,
            fault_injector=injector,
            retry_policy=task.retry_policy,
            **task.engine_knobs,
        )

    def cache_hit(outcome, member, entry, chain):
        def action() -> None:
            now = clock.now_ms
            scores.start_journal()
            model = entry.model.clone_as(member.name)
            scores.put(
                member.name,
                "switch_model",
                model,
                recorded_at_ms=now,
                source=f"fleet_cache:{entry.origin}",
            )
            outcome.batches.append(
                _EventBatch(chain=chain, records=tuple(scores.take_journal()))
            )
            outcome.model = model
            outcome.finished_ms = now

        return action

    def complete_probe(outcome, driver, fingerprint, chain):
        def action() -> None:
            now = clock.now_ms
            assert driver.model is not None
            if task.use_cache and cache_store_allowed(driver.model, injector):
                scores.start_journal()
                cache.store(
                    fingerprint, driver.model, driver.member.name,
                    recorded_at_ms=now,
                )
                outcome.store_record = scores.take_journal()[0]
            # Local waiters are *not* completed here: the merge
            # resynthesizes the completion batch from the global waiter
            # set, which this shard cannot know.
            outcome.model = driver.model
            outcome.finished_ms = now
            outcome.probe_ops = driver.engine.probe_ops()
            outcome.steps = tuple(driver.step_log)
            outcome.complete_chain = chain

        return action

    def step(outcome, driver, fingerprint, chain):
        def action() -> None:
            now = clock.now_ms
            scores.start_journal()
            stage, elapsed, done = driver.advance(now)
            outcome.batches.append(
                _EventBatch(chain=chain, records=tuple(scores.take_journal()))
            )
            next_chain = chain + (now + elapsed,)
            if done:
                sim.schedule(
                    elapsed,
                    complete_probe(outcome, driver, fingerprint, next_chain),
                )
            else:
                sim.schedule(
                    elapsed, step(outcome, driver, fingerprint, next_chain)
                )

        return action

    for position, global_index in enumerate(task.indices):
        member = task.members[position]
        fingerprint = profile_fingerprint(
            member.profile,
            include_policy=task.include_policy,
            **task.engine_knobs,
        )
        outcome = _MemberOutcome(
            index=global_index,
            name=member.name,
            profile_name=member.profile.name,
            fingerprint=fingerprint,
        )
        outcomes[global_index] = outcome
        if task.use_cache:
            entry = cache.lookup(fingerprint)
            if entry is not None:
                outcome.kind = "cache"
                outcome.cache_origin = entry.origin
                sim.call_soon(cache_hit(outcome, member, entry, (0.0,)))
                continue
            if coalesce_ok:
                if fingerprint in leaders:
                    outcome.kind = "waiter"
                    continue
                leaders[fingerprint] = global_index
        outcome.kind = "leader"
        seed = member.seed if member.seed is not None else task.seed + global_index
        driver = MemberDriver(
            member, build_engine(member, seed), task.include_policy
        )
        sim.call_soon(step(outcome, driver, fingerprint, (0.0,)))

    makespan = sim.run()
    ordered = tuple(outcomes[index] for index in task.indices)
    journaled = sum(
        len(batch.records) for o in ordered for batch in o.batches
    ) + sum(1 for o in ordered if o.store_record is not None)
    return _ShardResult(
        shard_index=task.shard_index,
        outcomes=ordered,
        makespan_ms=makespan,
        events=sim.processed_events,
        records=journaled,
    )


class ShardedFleetEngine:
    """Fleet inference partitioned across worker processes.

    Same contract as :class:`FleetInferenceEngine` with unbounded
    admission: identical :class:`FleetResult`, identical TangoDB
    records in identical insertion order, identical JSON summary -- at
    any ``shards`` count, under either partition strategy, on either
    backend.  See the module docstring for the merge protocol.

    Args:
        members: fleet members or bare profiles (names must be unique).
        scores: the caller's score database; warm
            ``(fingerprint -> model)`` cache entries found here are
            shipped to every worker, and the merged run's records land
            back here.
        seed: base seed; member ``i`` defaults to ``seed + i``
            (``i`` is the *global* member index, so seeding is
            partition-independent).
        shards: worker count requested (clamped to the fleet size).
        partition: ``round_robin`` or ``tier`` (see
            :func:`repro.core.placement.partition_names`).
        backend: ``inline`` or ``process``.
        mp_start_method: ``fork``/``spawn``/``forkserver``; default
            prefers ``fork`` where available, else ``spawn``.
        use_cache: consult/populate the fingerprint model cache.
        fault_injector: optional :class:`FaultInjector`; its *plan* is
            shipped and each worker rebuilds a fresh injector (fault
            decision streams are per switch name, so the replay is
            byte-identical).
        retry_policy: forwarded to every member engine.
        remaining keyword knobs: forwarded to every member's
            :class:`SwitchInferenceEngine`.
    """

    def __init__(
        self,
        members: Sequence[Union[FleetMember, SwitchProfile]],
        scores: Optional[TangoScoreDatabase] = None,
        seed: int = 0,
        shards: int = 1,
        partition: str = "round_robin",
        backend: str = "process",
        mp_start_method: Optional[str] = None,
        use_cache: bool = True,
        fault_injector=None,
        retry_policy=None,
        size_probe_max_rules: int = 8192,
        size_accuracy_target: float = 0.02,
        latency_batch_sizes: Tuple[int, ...] = (100, 400, 900, 1600),
        policy_cache_size: Optional[int] = None,
    ) -> None:
        resolved: List[FleetMember] = []
        for item in members:
            if isinstance(item, FleetMember):
                resolved.append(item)
            else:
                resolved.append(FleetMember(name=item.name, profile=item))
        if not resolved:
            raise ValueError("a fleet needs at least one member")
        names = [member.name for member in resolved]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate fleet member names: {sorted(names)}")
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if partition not in PARTITION_STRATEGIES:
            raise ValueError(
                f"unknown partition strategy {partition!r}; "
                f"known: {sorted(PARTITION_STRATEGIES)}"
            )
        if backend not in SHARD_BACKENDS:
            raise ValueError(
                f"unknown shard backend {backend!r}; "
                f"known: {sorted(SHARD_BACKENDS)}"
            )
        self.members = resolved
        self.scores = scores if scores is not None else TangoScoreDatabase()
        self.seed = seed
        self.shards = shards
        self.partition = partition
        self.backend = backend
        self.mp_start_method = mp_start_method
        self.use_cache = use_cache
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        self.engine_knobs: Dict[str, Any] = {
            "size_probe_max_rules": size_probe_max_rules,
            "size_accuracy_target": size_accuracy_target,
            "latency_batch_sizes": tuple(latency_batch_sizes),
            "policy_cache_size": policy_cache_size,
        }
        self.cache = ModelCache(self.scores)
        self.shard_stats: Dict[str, Any] = {}
        self._fingerprints: Dict[str, str] = {}

    # -- helpers ---------------------------------------------------------------
    def member(self, name: str) -> FleetMember:
        for candidate in self.members:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no fleet member named {name!r}")

    def fingerprint_for(self, member: FleetMember, include_policy: bool = True) -> str:
        """The cache fingerprint this member resolves to."""
        return profile_fingerprint(
            member.profile, include_policy=include_policy, **self.engine_knobs
        )

    def _fault_plan(self):
        return getattr(self.fault_injector, "plan", None)

    def _warm_cache_records(self) -> Tuple[ScoreRecord, ...]:
        """The caller-side model-cache entries every worker receives."""
        return tuple(
            record
            for record in self.scores.records_for_switch(FLEET_DB_SWITCH)
            if record.key.metric == MODEL_CACHE_METRIC
        )

    def _build_tasks(self, include_policy: bool) -> List[_ShardTask]:
        groups = partition_names(
            [member.name for member in self.members], self.shards, self.partition
        )
        cache_records = self._warm_cache_records() if self.use_cache else ()
        tasks: List[_ShardTask] = []
        for shard_index, group in enumerate(groups):
            if not group:
                continue  # more shards requested than members
            tasks.append(
                _ShardTask(
                    shard_index=shard_index,
                    indices=tuple(group),
                    members=tuple(self.members[index] for index in group),
                    seed=self.seed,
                    include_policy=include_policy,
                    use_cache=self.use_cache,
                    engine_knobs=dict(self.engine_knobs),
                    fault_plan=self._fault_plan(),
                    retry_policy=self.retry_policy,
                    cache_records=cache_records,
                )
            )
        return tasks

    def _run_tasks(self, tasks: List[_ShardTask]) -> List[_ShardResult]:
        if self.backend == "inline" or len(tasks) == 1:
            return [_run_shard(task) for task in tasks]
        import multiprocessing

        method = self.mp_start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        context = multiprocessing.get_context(method)
        workers = min(len(tasks), max(1, os.cpu_count() or 1))
        with context.Pool(processes=workers) as pool:
            return pool.map(_run_shard, tasks, chunksize=1)

    # -- the deterministic merge ----------------------------------------------
    def infer_fleet(self, include_policy: bool = True) -> FleetResult:
        """Infer every member across the shards and merge the streams.

        Returns the identical :class:`FleetResult` a single-queue
        unbounded run would produce; ``shard_stats`` afterwards holds
        the per-shard and merge accounting (never part of the result
        or the TangoDB stream, so summaries stay byte-identical).
        """
        tasks = self._build_tasks(include_policy)
        shard_results = self._run_tasks(tasks)

        outcomes: Dict[int, _MemberOutcome] = {}
        for shard in shard_results:
            for outcome in shard.outcomes:
                outcomes[outcome.index] = outcome
        coalesce_ok = self.use_cache and coalescing_allowed(self.fault_injector)

        # Cross-shard single-flight: the global leader of a fingerprint
        # is its lowest-indexed cold member; other shards' duplicate
        # probes are dropped, their waiters re-homed onto the winner.
        kept: List[_MemberOutcome] = []
        dropped: List[_MemberOutcome] = []
        waiters_of: Dict[str, List[_MemberOutcome]] = {}
        if coalesce_ok:
            leader_of: Dict[str, _MemberOutcome] = {}
            for index in sorted(outcomes):
                outcome = outcomes[index]
                if outcome.kind == "leader":
                    if outcome.fingerprint in leader_of:
                        dropped.append(outcome)
                    else:
                        leader_of[outcome.fingerprint] = outcome
                        kept.append(outcome)
                elif outcome.kind == "waiter":
                    waiters_of.setdefault(outcome.fingerprint, []).append(outcome)
            for duplicate in dropped:
                waiters_of.setdefault(duplicate.fingerprint, []).append(duplicate)
        else:
            kept = [
                outcomes[index]
                for index in sorted(outcomes)
                if outcomes[index].kind == "leader"
            ]

        # Interleave every shard's event batches into the global order:
        # lexicographic (reversed chain, member index), which is exactly
        # the single queue's (time, push sequence) execution order.
        merge_events: List[Tuple[Tuple[float, ...], int, Tuple[ScoreRecord, ...]]]
        merge_events = []
        for index in sorted(outcomes):
            outcome = outcomes[index]
            if outcome.kind == "cache":
                for batch in outcome.batches:
                    merge_events.append(
                        (tuple(reversed(batch.chain)), index, batch.records)
                    )
        for leader in kept:
            for batch in leader.batches:
                merge_events.append(
                    (tuple(reversed(batch.chain)), leader.index, batch.records)
                )
            completion: List[ScoreRecord] = []
            entry: Optional[CachedModel] = None
            if leader.store_record is not None:
                completion.append(leader.store_record)
                entry = leader.store_record.value
            group = sorted(
                waiters_of.get(leader.fingerprint, ()), key=lambda o: o.index
            )
            if group and entry is None:
                assert leader.model is not None
                entry = CachedModel(
                    fingerprint=leader.fingerprint,
                    model=leader.model,
                    origin=leader.name,
                    recorded_at_ms=leader.finished_ms,
                )
            for waiter in group:
                assert entry is not None
                model = entry.model.clone_as(waiter.name)
                waiter.model = model
                waiter.cache_origin = entry.origin
                waiter.finished_ms = leader.finished_ms
                completion.append(
                    ScoreRecord(
                        key=ScoreKey.make(waiter.name, "switch_model"),
                        value=model,
                        recorded_at_ms=leader.finished_ms,
                        source=f"fleet_coalesced:{entry.origin}",
                    )
                )
            merge_events.append(
                (tuple(reversed(leader.complete_chain)), leader.index, tuple(completion))
            )
        merge_events.sort(key=lambda event: (event[0], event[1]))

        merged_records = 0
        for _, _, records in merge_events:
            for record in records:
                merged_records += 1
                self.scores.put(
                    record.key.switch,
                    record.key.metric,
                    record.value,
                    recorded_at_ms=record.recorded_at_ms,
                    source=record.source,
                    **dict(record.key.params),
                )

        # Reconstruct the cache counters a single-queue run would show:
        # every member looked up once (phase A), leaders with clean
        # models stored once.
        if self.use_cache:
            warm = sum(1 for o in outcomes.values() if o.kind == "cache")
            self.cache.hits += warm
            self.cache.misses += len(outcomes) - warm
            self.cache.stores += sum(
                1 for leader in kept if leader.store_record is not None
            )

        makespan = max((leader.finished_ms for leader in kept), default=0.0)
        kept_indices = {leader.index for leader in kept}
        dropped_indices = {duplicate.index for duplicate in dropped}
        results: List[FleetMemberResult] = []
        for index, member in enumerate(self.members):
            outcome = outcomes[index]
            assert outcome.model is not None
            self._fingerprints[member.name] = outcome.fingerprint
            results.append(
                FleetMemberResult(
                    name=outcome.name,
                    profile_name=outcome.profile_name,
                    fingerprint=outcome.fingerprint,
                    model=outcome.model,
                    started_ms=0.0,
                    finished_ms=outcome.finished_ms,
                    cache_hit=outcome.kind == "cache",
                    coalesced=outcome.kind == "waiter"
                    or index in dropped_indices,
                    cache_origin=outcome.cache_origin,
                    probe_ops=outcome.probe_ops if index in kept_indices else 0,
                    steps=outcome.steps if index in kept_indices else (),
                )
            )
        result = FleetResult(
            members=results, makespan_ms=makespan, max_in_flight=None
        )
        self.scores.put(
            FLEET_DB_SWITCH,
            "fleet_run",
            result.summary(),
            recorded_at_ms=makespan,
            source="fleet_engine",
            members=len(self.members),
        )

        self.shard_stats = {
            "shards": self.shards,
            "workers": len(tasks),
            "partition": self.partition,
            "backend": self.backend,
            "members": len(self.members),
            "cross_shard_coalesced": len(dropped),
            "wasted_probe_ops": sum(o.probe_ops for o in dropped),
            "merge_events": len(merge_events),
            "merge_records": merged_records,
            "cpu_count": os.cpu_count(),
            "per_shard": [
                {
                    "shard": shard.shard_index,
                    "members": len(shard.outcomes),
                    "full_probes": sum(
                        1 for o in shard.outcomes if o.kind == "leader"
                    ),
                    "cache_hits": sum(
                        1 for o in shard.outcomes if o.kind == "cache"
                    ),
                    "makespan_ms": round(shard.makespan_ms, 4),
                    "events": shard.events,
                    "records": shard.records,
                }
                for shard in shard_results
            ],
        }
        return result


__all__ = [
    "SHARD_BACKENDS",
    "ShardedFleetEngine",
]
