"""Tango: SDN switch property inference, abstraction, and optimization.

A full reproduction of *"Tango: Simplifying SDN Control with Automatic
Switch Property Inference, Abstraction, and Optimization"* (CoNEXT 2014),
built on a discrete-event simulation of diverse OpenFlow switches.

Package layout:

* :mod:`repro.sim` -- virtual clock, events, seeded randomness, latency models.
* :mod:`repro.openflow` -- in-process OpenFlow message/channel substrate.
* :mod:`repro.tables` -- multi-level flow-table cache model and TCAM geometry.
* :mod:`repro.switches` -- simulated switches with vendor profiles.
* :mod:`repro.core` -- Tango itself: patterns, probing, size and policy
  inference, latency curves, the request DAG, and the Tango schedulers.
* :mod:`repro.baselines` -- Dionysus and naive scheduling baselines.
* :mod:`repro.netem` -- topologies (triangle testbed, Google B4),
  emulated networks, link-failure and traffic-engineering scenarios.
* :mod:`repro.workloads` -- ClassBench-like rule sets with dependency DAGs.

Quickstart::

    from repro.core import Tango
    from repro.switches import SWITCH_2

    tango = Tango(seed=1)
    name = tango.register_profile(SWITCH_2)
    model = tango.infer(name, include_policy=False)
    print(model.layer_sizes)   # -> [2560]
"""

from repro.core.api import Tango

__version__ = "1.0.0"

__all__ = ["Tango", "__version__"]
