"""Traffic-matrix and flow-arrival helpers for network-wide scenarios."""

from __future__ import annotations

import bisect
import itertools
from typing import Dict, List, Sequence, Tuple

from repro.sim.rng import SeededRng


def zipf_weights(count: int, skew: float) -> List[float]:
    """Unnormalised Zipf popularity weights ``1 / rank^skew`` for ranks 1..count.

    ``skew=0`` degenerates to a uniform mix; larger values concentrate
    probability mass on the first few ranks (the heavy-hitter shape of
    real flow-destination popularity that FDRC-style rule caching
    exploits).
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    return [1.0 / float(rank) ** skew for rank in range(1, count + 1)]


class ZipfSampler:
    """Deterministic rank sampler over a Zipf popularity distribution.

    Draws come from the supplied :class:`~repro.sim.rng.SeededRng`
    stream via inverse-CDF lookup on the precomputed cumulative weights,
    so a sampler is a pure function of ``(count, skew, rng stream)`` —
    same seed, same rank sequence, byte-for-byte.
    """

    def __init__(self, count: int, skew: float, rng: SeededRng) -> None:
        weights = zipf_weights(count, skew)
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]
        self._rng = rng

    def sample(self) -> int:
        """One 0-based rank (0 is the most popular)."""
        u = self._rng.uniform(0.0, self._total)
        return min(
            bisect.bisect_left(self._cumulative, u), len(self._cumulative) - 1
        )


def uniform_traffic_matrix(
    nodes: Sequence[str],
    total_demand: float,
    rng: SeededRng,
    sparsity: float = 0.5,
) -> Dict[Tuple[str, str], float]:
    """A random traffic matrix over node pairs.

    Args:
        nodes: node names.
        total_demand: demand summed over all selected pairs.
        rng: randomness source.
        sparsity: fraction of ordered pairs that carry traffic.
    """
    pairs = [(a, b) for a in nodes for b in nodes if a != b]
    count = max(1, int(len(pairs) * sparsity))
    selected = rng.sample(pairs, count)
    weights = [rng.uniform(0.5, 1.5) for _ in selected]
    scale = total_demand / sum(weights)
    return {pair: weight * scale for pair, weight in zip(selected, weights)}


def poisson_flow_arrivals(
    rate_per_ms: float, duration_ms: float, rng: SeededRng
) -> List[float]:
    """Arrival times of a Poisson flow process over ``duration_ms``."""
    if rate_per_ms <= 0:
        raise ValueError("rate_per_ms must be positive")
    arrivals: List[float] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate_per_ms)
        if t >= duration_ms:
            return arrivals
        arrivals.append(t)
