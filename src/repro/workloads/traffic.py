"""Traffic-matrix and flow-arrival helpers for network-wide scenarios."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sim.rng import SeededRng


def uniform_traffic_matrix(
    nodes: Sequence[str],
    total_demand: float,
    rng: SeededRng,
    sparsity: float = 0.5,
) -> Dict[Tuple[str, str], float]:
    """A random traffic matrix over node pairs.

    Args:
        nodes: node names.
        total_demand: demand summed over all selected pairs.
        rng: randomness source.
        sparsity: fraction of ordered pairs that carry traffic.
    """
    pairs = [(a, b) for a in nodes for b in nodes if a != b]
    count = max(1, int(len(pairs) * sparsity))
    selected = rng.sample(pairs, count)
    weights = [rng.uniform(0.5, 1.5) for _ in selected]
    scale = total_demand / sum(weights)
    return {pair: weight * scale for pair, weight in zip(selected, weights)}


def poisson_flow_arrivals(
    rate_per_ms: float, duration_ms: float, rng: SeededRng
) -> List[float]:
    """Arrival times of a Poisson flow process over ``duration_ms``."""
    if rate_per_ms <= 0:
        raise ValueError("rate_per_ms must be positive")
    arrivals: List[float] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate_per_ms)
        if t >= duration_ms:
            return arrivals
        arrivals.append(t)
