"""Rule dependency analysis.

Two ACL rules *depend* on each other when their matches overlap: some
packet would hit both, so the rule earlier in the ACL must win, which in
OpenFlow means it needs a strictly higher priority (and, to avoid
transient misclassification, should be installed first).
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from repro.openflow.match import Match


def build_dependency_graph(rules: Sequence[Match]) -> nx.DiGraph:
    """Dependency DAG of an ACL-ordered rule list.

    Nodes are rule indices.  An edge ``i -> j`` (for ``i < j``) means rule
    ``i`` precedes rule ``j`` in the ACL and their matches overlap, so
    rule ``i`` must receive the higher priority.

    The graph is acyclic by construction (edges always point from lower
    to higher index).
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(rules)))
    for i in range(len(rules)):
        rule_i = rules[i]
        for j in range(i + 1, len(rules)):
            if rule_i.overlaps(rules[j]):
                graph.add_edge(i, j)
    return graph


def transitive_reduction_size(graph: nx.DiGraph) -> int:
    """Edge count of the transitive reduction (the essential constraints)."""
    return nx.transitive_reduction(graph).number_of_edges()


def dag_depth(graph: nx.DiGraph) -> int:
    """Length (in nodes) of the longest dependency chain."""
    if graph.number_of_nodes() == 0:
        return 0
    return nx.dag_longest_path_length(graph) + 1
