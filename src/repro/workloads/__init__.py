"""Workload generation.

The paper's single-switch scheduling evaluation (Section 7.1) uses three
ClassBench access-control rule sets with overlap-induced dependency
constraints.  ClassBench itself needs seed parameter files we do not
have, so :mod:`repro.workloads.classbench` synthesises rule sets with the
same *shape statistics* the paper reports in Table 2: rule counts around
830-990 and dependency-DAG depths of 64/38/33 (the depth equals the
number of distinct topological priorities).
"""

from repro.workloads.classbench import (
    CLASSBENCH_PRESETS,
    ClassbenchLikeGenerator,
    RuleSet,
    classbench_preset,
)
from repro.workloads.dependencies import build_dependency_graph
from repro.workloads.traffic import poisson_flow_arrivals, uniform_traffic_matrix

__all__ = [
    "ClassbenchLikeGenerator",
    "RuleSet",
    "CLASSBENCH_PRESETS",
    "classbench_preset",
    "build_dependency_graph",
    "uniform_traffic_matrix",
    "poisson_flow_arrivals",
]
