"""ClassBench-like ACL rule-set synthesis.

The generator produces an ACL-ordered list of matches organised into
*families* that never overlap across family boundaries (each family's
rules carry a distinct exact ``eth_src``, like per-device ACL blocks), so
the dependency structure is fully controlled:

* one **deep family** -- a refinement chain in which each rule is
  strictly more specific than the previous one (alternately narrowing
  the source and destination prefixes), giving a dependency chain of a
  prescribed depth (up to 66);
* many **shallow chain families** -- short nested-destination chains;
* **star families** -- one coarse rule shadowed by several mutually
  disjoint specific rules (depth 2, high fan-out);
* **singletons** -- independent rules.

Table 2's shape statistics (rule count, distinct topological priorities
= dependency depth, R priorities = rule count) are reproduced by the
presets below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from repro.openflow.match import IpPrefix, Match
from repro.sim.rng import SeededRng
from repro.workloads.dependencies import build_dependency_graph, dag_depth


@dataclass
class RuleSet:
    """An ACL-ordered rule list plus its dependency DAG."""

    name: str
    rules: List[Match]
    dependencies: nx.DiGraph

    def __len__(self) -> int:
        return len(self.rules)

    @property
    def depth(self) -> int:
        return dag_depth(self.dependencies)


#: Table 2 presets: (rule count, dependency depth).
CLASSBENCH_PRESETS: Dict[int, Tuple[int, int]] = {
    1: (829, 64),
    2: (989, 38),
    3: (972, 33),
}


def _prefix(value: int, length: int) -> IpPrefix:
    mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
    return IpPrefix(value & mask, length)


class ClassbenchLikeGenerator:
    """Synthesises a rule set with prescribed size and dependency depth.

    Args:
        n_rules: total number of rules.
        depth: length of the longest dependency chain (2..66).
        seed: RNG seed.
        name: label for the generated rule set.
    """

    def __init__(
        self, n_rules: int, depth: int, seed: int = 0, name: str = "classbench"
    ) -> None:
        if n_rules < depth:
            raise ValueError("n_rules must be at least the requested depth")
        if not 1 <= depth <= 66:
            raise ValueError("depth must be in [1, 66]")
        self.n_rules = n_rules
        self.depth = depth
        self.seed = seed
        self.name = name
        self._rng = SeededRng(seed).child(f"classbench:{name}")

    # -- family builders --------------------------------------------------------
    def _deep_family(self, family_id: int, length: int) -> List[Match]:
        """A refinement chain: every rule more specific than the previous.

        The chain alternates deepening the source and destination
        prefixes along a random trunk address; ACL order is most-specific
        first, so rule i must beat (and depends on) every later rule.
        """
        trunk_src = self._rng.randint(0, 2**32)
        trunk_dst = self._rng.randint(0, 2**32)
        # Distribute `length` refinement steps over the two 0..32 ladders.
        src_steps = min(32, (length + 1) // 2)
        dst_steps = min(32, length - src_steps)
        levels: List[Tuple[int, int]] = []
        src_len, dst_len = src_steps, dst_steps
        for step in range(length):
            levels.append((src_len, dst_len))
            if src_len > 0 and (dst_len == 0 or step % 2 == 0):
                src_len -= 1
            else:
                dst_len = max(0, dst_len - 1)
        rules = []
        for src_len, dst_len in levels:
            rules.append(
                Match(
                    eth_src=family_id,
                    eth_type=0x0800,
                    ip_src=_prefix(trunk_src, src_len) if src_len else None,
                    ip_dst=_prefix(trunk_dst, dst_len) if dst_len else None,
                )
            )
        return rules

    def _chain_family(self, family_id: int, length: int) -> List[Match]:
        """A nested destination-prefix chain, most specific first."""
        trunk_dst = self._rng.randint(0, 2**32)
        base_len = self._rng.randint(8, 20)
        rules = []
        for level in range(length):
            rules.append(
                Match(
                    eth_src=family_id,
                    eth_type=0x0800,
                    ip_dst=_prefix(trunk_dst, min(32, base_len + length - 1 - level)),
                )
            )
        return rules

    def _star_family(self, family_id: int, leaves: int) -> List[Match]:
        """Disjoint specific rules shadowing one coarse rule (depth 2)."""
        base = self._rng.randint(0, 2**8) << 24
        parent_len = 8
        rules = []
        for leaf in range(leaves):
            leaf_value = base | (leaf << 8)
            rules.append(
                Match(eth_src=family_id, eth_type=0x0800, ip_dst=_prefix(leaf_value, 24))
            )
        rules.append(Match(eth_src=family_id, eth_type=0x0800, ip_dst=_prefix(base, parent_len)))
        return rules

    def _singleton(self, family_id: int) -> List[Match]:
        address = self._rng.randint(0, 2**32)
        return [Match(eth_src=family_id, eth_type=0x0800, ip_dst=_prefix(address, 32))]

    # -- public API ------------------------------------------------------------------
    def generate(self) -> RuleSet:
        """Generate the rule set and compute its dependency DAG."""
        rules: List[Match] = []
        family_id = 1
        rules.extend(self._deep_family(family_id, self.depth))
        family_id += 1

        remaining = self.n_rules - len(rules)
        while remaining > 0:
            draw = self._rng.uniform()
            max_len = min(remaining, max(2, self.depth // 2))
            if draw < 0.35 and remaining >= 3:
                size = min(remaining, self._rng.randint(3, max(4, min(12, max_len))))
                family = self._star_family(family_id, leaves=size - 1)
            elif draw < 0.75 and remaining >= 2:
                size = min(remaining, self._rng.randint(2, max(3, min(10, max_len))))
                family = self._chain_family(family_id, size)
            else:
                family = self._singleton(family_id)
            rules.extend(family)
            remaining = self.n_rules - len(rules)
            family_id += 1

        dependencies = build_dependency_graph(rules)
        return RuleSet(name=self.name, rules=rules, dependencies=dependencies)


def classbench_preset(index: int, seed: int = 0) -> RuleSet:
    """One of the paper's three rule sets, by Table 2 shape statistics."""
    if index not in CLASSBENCH_PRESETS:
        raise ValueError(f"preset must be one of {sorted(CLASSBENCH_PRESETS)}")
    n_rules, depth = CLASSBENCH_PRESETS[index]
    generator = ClassbenchLikeGenerator(
        n_rules=n_rules, depth=depth, seed=seed + index, name=f"classbench{index}"
    )
    return generator.generate()
