"""Flow match conditions.

The paper's Table 1 distinguishes L2-only, L3-only, and combined L2+L3
matches because TCAM capacity depends on the match width (single- vs
double-wide mode).  A :class:`Match` carries optional L2 fields (MAC
addresses, EtherType) and L3 fields (IPv4 prefixes, protocol); its
:attr:`kind` classifies it into the width classes the TCAM model uses.

Matches also support overlap and subsumption tests, which the ClassBench
workload generator uses to build rule dependency DAGs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class MatchKind(enum.Enum):
    """Width class of a match, as seen by the TCAM."""

    L2 = "l2"
    L3 = "l3"
    L2_L3 = "l2+l3"


@dataclass(frozen=True)
class IpPrefix:
    """An IPv4 prefix, value/length."""

    value: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length must be in [0, 32], got {self.length}")
        if not 0 <= self.value < 2**32:
            raise ValueError("prefix value out of IPv4 range")
        mask = self.mask
        if self.value & ~mask & 0xFFFFFFFF:
            raise ValueError("prefix has host bits set beyond its length")

    @property
    def mask(self) -> int:
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    def contains_address(self, address: int) -> bool:
        return (address & self.mask) == self.value

    def covers(self, other: "IpPrefix") -> bool:
        """True if every address in ``other`` is inside this prefix."""
        return self.length <= other.length and other.value & self.mask == self.value

    def overlaps(self, other: "IpPrefix") -> bool:
        """True if the two prefixes share at least one address."""
        return self.covers(other) or other.covers(self)

    def __str__(self) -> str:
        octets = [(self.value >> shift) & 0xFF for shift in (24, 16, 8, 0)]
        return f"{'.'.join(str(o) for o in octets)}/{self.length}"


def _field_overlaps(a, b) -> bool:
    """Exact-match fields overlap when either is a wildcard or both equal."""
    return a is None or b is None or a == b


def _field_covers(a, b) -> bool:
    """Field ``a`` covers ``b`` when ``a`` is a wildcard or both equal."""
    return a is None or a == b


@dataclass(frozen=True)
class Match:
    """An OpenFlow match over L2 and/or L3 header fields.

    ``None`` means wildcard.  At least one field must be set.
    """

    eth_src: Optional[int] = None
    eth_dst: Optional[int] = None
    eth_type: Optional[int] = None
    ip_src: Optional[IpPrefix] = None
    ip_dst: Optional[IpPrefix] = None
    ip_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None

    def __post_init__(self) -> None:
        if all(
            getattr(self, name) is None
            for name in (
                "eth_src",
                "eth_dst",
                "eth_type",
                "ip_src",
                "ip_dst",
                "ip_proto",
                "tp_src",
                "tp_dst",
            )
        ):
            raise ValueError("a Match must constrain at least one field")

    # -- classification -----------------------------------------------------
    @property
    def has_l2(self) -> bool:
        """True when the match constrains MAC addresses.

        ``eth_type`` is deliberately excluded: every L3 rule carries an
        EtherType qualifier, yet the paper's Table 1 counts such rules as
        single-wide L3 entries.
        """
        return any(f is not None for f in (self.eth_src, self.eth_dst))

    @property
    def has_l3(self) -> bool:
        return any(
            f is not None
            for f in (self.ip_src, self.ip_dst, self.ip_proto, self.tp_src, self.tp_dst)
        )

    @property
    def kind(self) -> MatchKind:
        if self.has_l2 and self.has_l3:
            return MatchKind.L2_L3
        if self.has_l3:
            return MatchKind.L3
        return MatchKind.L2

    # -- packet matching ----------------------------------------------------
    def matches_packet(self, packet: "PacketFields") -> bool:
        """True if ``packet`` satisfies every constrained field."""
        if self.eth_src is not None and packet.eth_src != self.eth_src:
            return False
        if self.eth_dst is not None and packet.eth_dst != self.eth_dst:
            return False
        if self.eth_type is not None and packet.eth_type != self.eth_type:
            return False
        if self.ip_src is not None and not self.ip_src.contains_address(packet.ip_src):
            return False
        if self.ip_dst is not None and not self.ip_dst.contains_address(packet.ip_dst):
            return False
        if self.ip_proto is not None and packet.ip_proto != self.ip_proto:
            return False
        if self.tp_src is not None and packet.tp_src != self.tp_src:
            return False
        if self.tp_dst is not None and packet.tp_dst != self.tp_dst:
            return False
        return True

    # -- relations between matches -------------------------------------------
    def overlaps(self, other: "Match") -> bool:
        """True if some packet could match both rules.

        Overlap between rules of different priority is what forces barrier
        priorities in the scheduler's dependency DAGs.
        """
        exact_pairs = (
            (self.eth_src, other.eth_src),
            (self.eth_dst, other.eth_dst),
            (self.eth_type, other.eth_type),
            (self.ip_proto, other.ip_proto),
            (self.tp_src, other.tp_src),
            (self.tp_dst, other.tp_dst),
        )
        if not all(_field_overlaps(a, b) for a, b in exact_pairs):
            return False
        for mine, theirs in ((self.ip_src, other.ip_src), (self.ip_dst, other.ip_dst)):
            if mine is not None and theirs is not None and not mine.overlaps(theirs):
                return False
        return True

    def covers(self, other: "Match") -> bool:
        """True if every packet matching ``other`` also matches this rule."""
        exact_pairs = (
            (self.eth_src, other.eth_src),
            (self.eth_dst, other.eth_dst),
            (self.eth_type, other.eth_type),
            (self.ip_proto, other.ip_proto),
            (self.tp_src, other.tp_src),
            (self.tp_dst, other.tp_dst),
        )
        if not all(_field_covers(a, b) for a, b in exact_pairs):
            return False
        for mine, theirs in ((self.ip_src, other.ip_src), (self.ip_dst, other.ip_dst)):
            if mine is None:
                continue
            if theirs is None or not mine.covers(theirs):
                return False
        return True

    def key(self) -> Tuple:
        """A hashable identity for exact-duplicate detection."""
        return (
            self.eth_src,
            self.eth_dst,
            self.eth_type,
            self.ip_src,
            self.ip_dst,
            self.ip_proto,
            self.tp_src,
            self.tp_dst,
        )


@dataclass(frozen=True)
class PacketFields:
    """Concrete header values of a data-plane packet."""

    eth_src: int = 0
    eth_dst: int = 0
    eth_type: int = 0x0800
    ip_src: int = 0
    ip_dst: int = 0
    ip_proto: int = 6
    tp_src: int = 0
    tp_dst: int = 0

    def exact_match(self) -> Match:
        """The exact-match rule for this packet (OVS kernel microflow)."""
        return Match(
            eth_src=self.eth_src,
            eth_dst=self.eth_dst,
            eth_type=self.eth_type,
            ip_src=IpPrefix(self.ip_src, 32),
            ip_dst=IpPrefix(self.ip_dst, 32),
            ip_proto=self.ip_proto,
            tp_src=self.tp_src,
            tp_dst=self.tp_dst,
        )
