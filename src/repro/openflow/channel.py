"""The controller-switch control channel.

The channel adds a (modelled) propagation delay on top of the switch's own
control-plane processing time, and advances the shared virtual clock.  The
probing engine measures operation latencies through this channel, exactly
as Tango measures through a real OpenFlow connection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    FlowMod,
    FlowStatsReply,
    FlowStatsRequest,
    PacketOut,
)
from repro.sim.clock import VirtualClock
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.rng import SeededRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.switches.base import SimulatedSwitch


@dataclass
class ChannelRecord:
    """Timing record of one control-channel exchange."""

    kind: str
    sent_at_ms: float
    completed_at_ms: float

    @property
    def latency_ms(self) -> float:
        return self.completed_at_ms - self.sent_at_ms


class ControlChannel:
    """A latency-modelled, in-process controller-to-switch channel.

    Args:
        switch: the simulated switch behind this channel.
        clock: shared virtual clock (defaults to the switch's clock).
        rtt: one-way channel latency model applied in each direction.
        rng: randomness source for channel jitter.
    """

    #: RTT reported for a probe packet whose reply never arrived.
    LOSS_TIMEOUT_MS = 100.0

    def __init__(
        self,
        switch: "SimulatedSwitch",
        clock: Optional[VirtualClock] = None,
        rtt: Optional[LatencyModel] = None,
        rng: Optional[SeededRng] = None,
        probe_loss_probability: float = 0.0,
    ) -> None:
        if not 0.0 <= probe_loss_probability < 1.0:
            raise ValueError("probe_loss_probability must be in [0, 1)")
        self.switch = switch
        self.clock = clock if clock is not None else switch.clock
        self._one_way = rtt if rtt is not None else ConstantLatency(0.05)
        self._rng = rng if rng is not None else SeededRng(0).child("channel")
        self.probe_loss_probability = probe_loss_probability
        self.history: List[ChannelRecord] = []
        self._xid = 0
        self.probes_lost = 0

    def _round_trip(self, kind: str, process) -> ChannelRecord:
        sent = self.clock.now_ms
        self.clock.advance(self._one_way.sample(self._rng))
        result = process()
        self.clock.advance(self._one_way.sample(self._rng))
        record = ChannelRecord(kind=kind, sent_at_ms=sent, completed_at_ms=self.clock.now_ms)
        self.history.append(record)
        record.result = result  # type: ignore[attr-defined]
        return record

    # -- public API ----------------------------------------------------------
    def send_flow_mod(self, flow_mod: FlowMod) -> ChannelRecord:
        """Send one flow_mod; clock advances by channel + switch latency.

        Raises whatever OpenFlow error the switch raises (e.g. table full),
        after accounting for the channel time already spent.
        """
        sent = self.clock.now_ms
        self.clock.advance(self._one_way.sample(self._rng))
        try:
            self.switch.apply_flow_mod(flow_mod)
        finally:
            self.clock.advance(self._one_way.sample(self._rng))
        record = ChannelRecord(
            kind=f"flow_mod:{flow_mod.command.value}",
            sent_at_ms=sent,
            completed_at_ms=self.clock.now_ms,
        )
        self.history.append(record)
        return record

    def send_barrier(self) -> BarrierReply:
        """Barrier round trip; switch drains any queued work first."""
        self._xid += 1
        xid = self._xid

        def process() -> BarrierReply:
            self.switch.drain(BarrierRequest(xid=xid))
            return BarrierReply(xid=xid, completed_at_ms=self.clock.now_ms)

        record = self._round_trip("barrier", process)
        return record.result  # type: ignore[attr-defined]

    def send_packet_out(self, packet_out: PacketOut) -> float:
        """Inject a probe packet and return its measured RTT in ms.

        The RTT covers channel down, data-path forwarding, and the probe
        reflection back to the controller -- this is the quantity clustered
        by the size-inference algorithm.

        With a non-zero ``probe_loss_probability``, a lost reply shows up
        as a :attr:`LOSS_TIMEOUT_MS` RTT -- a far outlier the clustering
        stage discards, as a real prober's timeout handling would.
        """
        start = self.clock.now_ms
        self.clock.advance(self._one_way.sample(self._rng))
        path_delay = self.switch.forward_packet(packet_out.packet)
        self.clock.advance(path_delay)
        self.clock.advance(self._one_way.sample(self._rng))
        if (
            self.probe_loss_probability > 0
            and self._rng.uniform() < self.probe_loss_probability
        ):
            self.probes_lost += 1
            return self.LOSS_TIMEOUT_MS
        return self.clock.now_ms - start

    def request_flow_stats(self, request: FlowStatsRequest) -> FlowStatsReply:
        record = self._round_trip(
            "flow_stats", lambda: self.switch.collect_flow_stats(request)
        )
        return record.result  # type: ignore[attr-defined]

    # -- introspection --------------------------------------------------------
    def total_control_time_ms(self) -> float:
        """Sum of latencies of all flow_mod exchanges so far."""
        return sum(r.latency_ms for r in self.history if r.kind.startswith("flow_mod"))

    def reset_history(self) -> None:
        self.history.clear()
