"""An in-process OpenFlow control substrate.

This package models the controller-switch protocol semantics the paper's
algorithms rely on: flow_mod (add / modify / delete) with priorities and
match fields, packet-out probes, barriers, and the table-full error that
the size-inference algorithm uses as its stopping condition.

It deliberately does not implement the OpenFlow wire format; messages are
plain Python objects exchanged over a latency-modelled in-process channel.
"""

from repro.openflow.actions import Action, ControllerAction, DropAction, OutputAction
from repro.openflow.channel import ControlChannel
from repro.openflow.errors import (
    OpenFlowError,
    TableFullError,
    BadMatchError,
    FlowNotFoundError,
    TransientFaultError,
    ControlMessageLostError,
    FlowModRejectedError,
    SwitchDisconnectedError,
)
from repro.openflow.match import Match, MatchKind
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    FlowMod,
    FlowModCommand,
    FlowStatsReply,
    FlowStatsRequest,
    PacketIn,
    PacketOut,
)

__all__ = [
    "Action",
    "OutputAction",
    "DropAction",
    "ControllerAction",
    "ControlChannel",
    "OpenFlowError",
    "TableFullError",
    "BadMatchError",
    "FlowNotFoundError",
    "TransientFaultError",
    "ControlMessageLostError",
    "FlowModRejectedError",
    "SwitchDisconnectedError",
    "Match",
    "MatchKind",
    "FlowMod",
    "FlowModCommand",
    "PacketIn",
    "PacketOut",
    "BarrierRequest",
    "BarrierReply",
    "FlowStatsRequest",
    "FlowStatsReply",
]
