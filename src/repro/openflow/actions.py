"""Flow actions.

Only the actions needed by the paper's experiments are modelled: forward
to a port, drop, and punt to the controller.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass


class Action(ABC):
    """Base class for flow-entry actions."""


@dataclass(frozen=True)
class OutputAction(Action):
    """Forward matching packets to ``port``."""

    port: int

    def __post_init__(self) -> None:
        if self.port < 0:
            raise ValueError(f"port must be non-negative, got {self.port}")


@dataclass(frozen=True)
class DropAction(Action):
    """Discard matching packets."""


@dataclass(frozen=True)
class ControllerAction(Action):
    """Punt matching packets to the controller."""


@dataclass(frozen=True)
class GotoTableAction(Action):
    """Continue matching in a later pipeline table (OpenFlow 1.1+).

    The target must be a *later* table; OpenFlow forbids backwards jumps,
    which keeps pipeline traversal loop-free.
    """

    table_id: int

    def __post_init__(self) -> None:
        if self.table_id < 0:
            raise ValueError(f"table_id must be non-negative, got {self.table_id}")
