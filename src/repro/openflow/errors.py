"""OpenFlow error conditions surfaced by the simulated switches.

``TableFullError`` is load-bearing: Algorithm 1 in the paper keeps
inserting flows "until the OpenFlow API rejects the call", using the
rejection as the signal that the total flow-table capacity was reached.
"""

from __future__ import annotations

from typing import Optional


class OpenFlowError(Exception):
    """Base class for all simulated OpenFlow protocol errors."""


class TableFullError(OpenFlowError):
    """Raised when a flow_mod ADD cannot fit in any flow table."""

    def __init__(self, capacity: int) -> None:
        super().__init__(f"flow tables full (capacity {capacity})")
        self.capacity = capacity


class BadMatchError(OpenFlowError):
    """Raised when a switch cannot support the requested match fields."""


class FlowNotFoundError(OpenFlowError):
    """Raised when MODIFY/DELETE_STRICT refers to a non-existent flow."""


class TransientFaultError(OpenFlowError):
    """Base class for injected faults that are safe to retry.

    Unlike :class:`TableFullError` (a *real* switch answer Algorithm 1
    depends on), transient faults model the control channel or switch
    misbehaving: the same operation may succeed if re-sent later.
    ``repro.faults.RetryPolicy`` retries exactly this family and nothing
    else.
    """

    def __init__(self, message: str, retry_at_ms: Optional[float] = None) -> None:
        super().__init__(message)
        #: Earliest simulated time at which a retry can possibly succeed,
        #: or ``None`` when an immediate retry is allowed.
        self.retry_at_ms = retry_at_ms


class ControlMessageLostError(TransientFaultError):
    """An injected control-channel loss: the flow_mod never reached the switch."""

    def __init__(self, kind: str = "flow_mod") -> None:
        super().__init__(f"control message lost in transit ({kind})")
        self.kind = kind


class FlowModRejectedError(TransientFaultError):
    """An injected transient flow_mod rejection (e.g. switch agent busy)."""

    def __init__(self) -> None:
        super().__init__("flow_mod transiently rejected by switch agent")


class SwitchDisconnectedError(TransientFaultError):
    """The control connection to the switch is down until ``retry_at_ms``."""

    def __init__(self, switch: str, reconnect_at_ms: float) -> None:
        super().__init__(
            f"switch {switch!r} disconnected (reconnects at {reconnect_at_ms:.3f} ms)",
            retry_at_ms=reconnect_at_ms,
        )
        self.switch = switch
        self.reconnect_at_ms = reconnect_at_ms
