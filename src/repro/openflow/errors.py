"""OpenFlow error conditions surfaced by the simulated switches.

``TableFullError`` is load-bearing: Algorithm 1 in the paper keeps
inserting flows "until the OpenFlow API rejects the call", using the
rejection as the signal that the total flow-table capacity was reached.
"""

from __future__ import annotations


class OpenFlowError(Exception):
    """Base class for all simulated OpenFlow protocol errors."""


class TableFullError(OpenFlowError):
    """Raised when a flow_mod ADD cannot fit in any flow table."""

    def __init__(self, capacity: int) -> None:
        super().__init__(f"flow tables full (capacity {capacity})")
        self.capacity = capacity


class BadMatchError(OpenFlowError):
    """Raised when a switch cannot support the requested match fields."""


class FlowNotFoundError(OpenFlowError):
    """Raised when MODIFY/DELETE_STRICT refers to a non-existent flow."""
