"""Controller-to-switch and switch-to-controller messages.

These are the in-process analogues of OpenFlow protocol messages.  A
:class:`FlowMod` carries the command (ADD / MODIFY / DELETE), the match,
the priority, the actions, and the optional ``install_by`` deadline that
Tango switch requests may specify (Section 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.openflow.actions import Action, OutputAction
from repro.openflow.match import Match, PacketFields


class FlowModCommand(enum.Enum):
    """The three flow-table operations the paper's patterns reorder."""

    ADD = "add"
    MODIFY = "mod"
    DELETE = "del"


@dataclass(frozen=True)
class FlowMod:
    """A flow-table modification request.

    Args:
        command: ADD, MODIFY, or DELETE.
        match: match condition; for MODIFY/DELETE selects the target entry.
        priority: OpenFlow priority (higher wins).
        actions: actions applied to matching packets (ADD/MODIFY).
        install_by_ms: optional deadline in virtual ms (None = best effort).
        table_id: pipeline table the rule belongs to (OpenFlow 1.1+;
            single-table switches only accept table 0).
    """

    command: FlowModCommand
    match: Match
    priority: int = 0
    actions: Tuple[Action, ...] = (OutputAction(port=1),)
    install_by_ms: Optional[float] = None
    table_id: int = 0

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ValueError(f"priority must be non-negative, got {self.priority}")
        if self.table_id < 0:
            raise ValueError(f"table_id must be non-negative, got {self.table_id}")
        if self.command is not FlowModCommand.DELETE and not self.actions:
            raise ValueError("ADD/MODIFY require at least one action")


@dataclass(frozen=True)
class PacketOut:
    """Controller-injected data-plane packet (used by probe traffic)."""

    packet: PacketFields
    in_port: int = 0


@dataclass(frozen=True)
class PacketIn:
    """Packet punted to the controller (control-path forwarding)."""

    packet: PacketFields
    reason: str = "no_match"


@dataclass(frozen=True)
class BarrierRequest:
    """Ask the switch to finish all preceding operations."""

    xid: int = 0


@dataclass(frozen=True)
class BarrierReply:
    """Barrier completion notification."""

    xid: int = 0
    completed_at_ms: float = 0.0


@dataclass(frozen=True)
class FlowStatsRequest:
    """Request per-flow statistics (used by probe bookkeeping)."""

    match: Optional[Match] = None


@dataclass(frozen=True)
class FlowStatsEntry:
    """One flow's statistics."""

    match: Match
    priority: int
    packet_count: int
    table_name: str


@dataclass(frozen=True)
class FlowStatsReply:
    """Reply carrying statistics for matching flows."""

    entries: Tuple[FlowStatsEntry, ...] = field(default_factory=tuple)
