"""Hot-path micro-benchmarks with a deterministic regression gate.

Each bench case runs an *optimized* arm (the shipping implementation)
and, where tractable, a *reference* arm (the retired pre-optimization
implementation from :mod:`repro.perf.reference`), then

1. asserts both arms produced bit-for-bit identical results (makespan,
   rounds, pattern choices, shift totals),
2. reports wall time and a deterministic operation count for each arm,
3. gates on op counts: a case regresses when its optimized op count
   exceeds the checked-in baseline (``benchmarks/perf_baseline.json``)
   by more than :data:`REGRESSION_THRESHOLD`.

Wall time is reported for humans (``speedup_wall``); the gate never
looks at it, so CI cannot flake with machine load.  Op counts are exact
functions of the workload: DAG edge visits + ready yields for the
schedulers (:class:`repro.core.requests.DagOpCounters`), accounting ops
for the shift models.  Note the shift case's wall speedup understates
the asymptotic win: the reference list's O(n) element moves run as one
C-level ``memmove``, while its op count grows quadratically -- which is
exactly why the gate uses ops.

Cases (``n`` is the suite size knob):

* ``chain_schedule``     -- n-request dependency chain, Basic scheduler.
* ``layered_schedule``   -- n requests in width-50 layers, Basic scheduler.
* ``descending_shifts``  -- n rule installs at descending priority
  through the shift model (every add shifts all residents).
* ``prefix_lookahead``   -- Prefix scheduler (depth 2) on the two-switch
  unlock workload.  The optimized arm is the incremental
  :class:`repro.core.planner.TailCostPlanner`; the reference arm is the
  retired recursive planner
  (:class:`repro.perf.reference.ReferencePrefixTangoScheduler`, capped
  at :data:`repro.perf.reference.PREFIX_REFERENCE_CAP` requests since it
  is ~O(n^2)).  Identity here is the strictest in the suite: the full
  per-request issue record list must match byte-for-byte, not just the
  summary signature.
* ``faulted_schedule``   -- the layered workload under a seeded fault
  plan (5% control loss + one early disconnect window); trajectory-only.
  Gates the cost of fault-deferral bookkeeping: re-enqueued requests
  revisit DAG edges, so a fault-handling change that loops instead of
  deferring shows up as an op-count blowup.
* ``sharded_fleet``      -- fleet inference through
  :class:`repro.core.shard.ShardedFleetEngine` (4 shards, tier
  partition, inline backend) over distinct-fingerprint tier-named
  profiles; the reference arm is the single-queue
  :class:`repro.core.fleet.FleetInferenceEngine` and identity covers
  summaries, models, and full TangoDB contents.  Wall-clock scaling
  over real worker processes is the separate ungated
  :func:`collect_fleet_scaling` block.
* ``serve_churn``        -- n churning flow arrivals served by
  :class:`repro.serve.ServeLoop` against a 96-rule budget (FDRC
  admission, policy-ranked eviction, wildcard aggregation);
  trajectory-only, op-count-gated via the loop's deterministic
  lookup + DAG + issue-record total.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.scheduler import BasicTangoScheduler, PrefixTangoScheduler
from repro.faults import (
    DisconnectWindow,
    FaultInjector,
    FaultPlan,
    verify_noop_injection,
)
from repro.obs.metrics import MetricsRegistry
from repro.core.fleet import FleetInferenceEngine, build_fleet
from repro.core.scores import TangoScoreDatabase
from repro.core.shard import ShardedFleetEngine
from repro.perf.reference import (
    PREFIX_REFERENCE_CAP,
    ReferenceBasicTangoScheduler,
    ReferencePrefixTangoScheduler,
    SortedListShiftModel,
)
from repro.perf.workloads import (
    FLEET_BENCH_KNOBS,
    SHARDED_BENCH_KNOBS,
    UNLOCK_ESTIMATES,
    chain_dag,
    descending_priorities,
    fast_executor,
    fleet_bench_profiles,
    layered_dag,
    serve_bench_profile,
    serve_churn_config,
    sharded_fleet_profiles,
    unlock_groups_dag,
)
from repro.tables.tcam import PriorityShiftModel

#: Optimized op count may grow this much over the baseline before the
#: gate fails (1.5x; headroom for intentional small changes).
REGRESSION_THRESHOLD = 1.5

#: Suite sizes: full run and the CI ``--quick`` run.
FULL_SIZES: Tuple[int, ...] = (1000, 5000, 20000)
QUICK_SIZES: Tuple[int, ...] = (1000,)

#: The quadratic reference arms are not run beyond this size.
REFERENCE_CAP = 5000


@dataclass
class BenchRecord:
    """One (case, n) measurement."""

    case: str
    n: int
    wall_ms: float
    ops: int
    ref_wall_ms: Optional[float] = None
    ref_ops: Optional[int] = None
    speedup_wall: Optional[float] = None
    speedup_ops: Optional[float] = None
    identical: Optional[bool] = None  # reference results bit-for-bit equal
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.case}:{self.n}"


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return (time.perf_counter() - start) * 1000.0, value


def _with_reference(record: BenchRecord, ref_wall_ms: float, ref_ops: int) -> None:
    record.ref_wall_ms = ref_wall_ms
    record.ref_ops = ref_ops
    if record.wall_ms > 0.0:
        record.speedup_wall = ref_wall_ms / record.wall_ms
    if record.ops > 0:
        record.speedup_ops = ref_ops / record.ops


def _schedule_signature(result) -> Tuple[float, int, Tuple[str, ...], int]:
    return (
        result.makespan_ms,
        result.rounds,
        tuple(result.pattern_choices),
        result.total_requests,
    )


def _bench_schedule(case: str, build_dag, n: int, with_reference: bool) -> BenchRecord:
    dag = build_dag(n)
    dag.ops.clear()
    # The gated arm runs with a live metrics registry attached: the op
    # attribution lands in the report, and -- because the op-count gate
    # compares against the uninstrumented baseline -- any instrumentation
    # cost that leaked into the hot path would trip the 1.5x threshold.
    registry = MetricsRegistry()
    scheduler = BasicTangoScheduler(fast_executor(), metrics=registry)
    wall_ms, result = _timed(lambda: scheduler.schedule(dag))
    record = BenchRecord(case=case, n=n, wall_ms=wall_ms, ops=dag.ops.total())
    record.detail = {
        "makespan_ms": result.makespan_ms,
        "rounds": result.rounds,
        "attribution": registry.snapshot(),
    }
    if with_reference and n <= REFERENCE_CAP:
        ref_dag = build_dag(n)
        reference = ReferenceBasicTangoScheduler(fast_executor())
        ref_wall_ms, ref_result = _timed(lambda: reference.schedule(ref_dag))
        _with_reference(record, ref_wall_ms, reference.scan_ops)
        record.identical = _schedule_signature(result) == _schedule_signature(
            ref_result
        )
    return record


def bench_chain_schedule(n: int, with_reference: bool = True) -> BenchRecord:
    return _bench_schedule("chain_schedule", chain_dag, n, with_reference)


def bench_layered_schedule(n: int, with_reference: bool = True) -> BenchRecord:
    return _bench_schedule("layered_schedule", layered_dag, n, with_reference)


def bench_descending_shifts(n: int, with_reference: bool = True) -> BenchRecord:
    priorities = descending_priorities(n)

    def run_fenwick():
        model = PriorityShiftModel()
        total = 0
        for priority in priorities:
            total += model.record_add(priority)
        return model, total

    wall_ms, (model, shifts) = _timed(run_fenwick)
    record = BenchRecord(
        case="descending_shifts", n=n, wall_ms=wall_ms, ops=model.accounting_ops
    )
    registry = MetricsRegistry()
    registry.counter("tcam.shift_model_queries").inc(len(priorities))
    registry.counter("tcam.shift_accounting_ops").inc(model.accounting_ops)
    record.detail = {"total_shifts": shifts, "attribution": registry.snapshot()}
    if with_reference and n <= REFERENCE_CAP:

        def run_sorted_list():
            reference = SortedListShiftModel()
            total = 0
            for priority in priorities:
                total += reference.record_add(priority)
            return reference, total

        ref_wall_ms, (reference, ref_shifts) = _timed(run_sorted_list)
        _with_reference(record, ref_wall_ms, reference.accounting_ops)
        record.identical = shifts == ref_shifts and len(model) == len(reference)
    return record


def _record_signature(result) -> Tuple:
    """Byte-comparable digest of every issue record in a schedule."""
    return tuple(
        (record.request.request_id, record.started_ms, record.finished_ms)
        for record in result.records
    )


def _unlock_estimate(request) -> float:
    return UNLOCK_ESTIMATES[request.location]


def bench_prefix_lookahead(n: int, with_reference: bool = True) -> BenchRecord:
    dag = unlock_groups_dag(n)
    dag.ops.clear()
    registry = MetricsRegistry()
    scheduler = PrefixTangoScheduler(
        fast_executor("a", "b"),
        estimate=_unlock_estimate,
        lookahead_depth=2,
        metrics=registry,
    )
    wall_ms, result = _timed(lambda: scheduler.schedule(dag))
    record = BenchRecord(
        case="prefix_lookahead", n=n, wall_ms=wall_ms, ops=dag.ops.total()
    )
    planner = scheduler.last_planner
    record.detail = {
        "makespan_ms": result.makespan_ms,
        "rounds": result.rounds,
        "planner": planner.stats() if planner is not None else {},
        "attribution": registry.snapshot(),
    }
    if with_reference and n <= PREFIX_REFERENCE_CAP:
        ref_dag = unlock_groups_dag(n)
        ref_dag.ops.clear()
        reference = ReferencePrefixTangoScheduler(
            fast_executor("a", "b"),
            estimate=_unlock_estimate,
            lookahead_depth=2,
        )
        ref_wall_ms, ref_result = _timed(lambda: reference.schedule(ref_dag))
        _with_reference(record, ref_wall_ms, ref_dag.ops.total())
        record.identical = _schedule_signature(result) == _schedule_signature(
            ref_result
        ) and _record_signature(result) == _record_signature(ref_result)
    return record


#: The faulted case's plan: enough churn to exercise deferral paths at
#: every suite size, few enough faults that rounds stay bounded.
FAULTED_PLAN = FaultPlan(
    seed=97,
    loss_probability=0.05,
    disconnects=(DisconnectWindow(start_ms=5.0, reconnect_at_ms=25.0),),
)


def bench_faulted_schedule(n: int, with_reference: bool = True) -> BenchRecord:
    del with_reference  # trajectory-only; faults have no pre-PR arm
    dag = layered_dag(n)
    dag.ops.clear()
    registry = MetricsRegistry()
    injector = FaultInjector(FAULTED_PLAN)
    scheduler = BasicTangoScheduler(
        fast_executor(fault_injector=injector), metrics=registry
    )
    wall_ms, result = _timed(lambda: scheduler.schedule(dag))
    record = BenchRecord(
        case="faulted_schedule", n=n, wall_ms=wall_ms, ops=dag.ops.total()
    )
    record.detail = {
        "makespan_ms": result.makespan_ms,
        "rounds": result.rounds,
        "fault_retries": result.fault_retries,
        "faulted_requests": len(result.faulted_request_ids),
        "injected": injector.injection_counts(),
        "attribution": registry.snapshot(),
    }
    return record


@dataclass(frozen=True)
class BenchCaseConfig:
    """Per-case knobs the bench cases read instead of module globals.

    The fleet cases run full (if tiny) probe pipelines, so their member
    counts are capped independently of the suite size knob; the sharded
    case's shard geometry lives here too so callers (tests, the scaling
    collector) can rescale a case without mutating module state.
    """

    #: Member cap of the single-queue ``fleet_infer`` case (its gate
    #: was calibrated at 12 members; see ``fleet_infer:12``).
    fleet_member_cap: int = 12
    #: Member cap of the gated ``sharded_fleet`` case.  The engine
    #: itself scales to 1024+ (see the ungated fleet-scaling block);
    #: the gate just needs enough members for every shard to do real
    #: work, cross-shard coalescing included.
    sharded_member_cap: int = 64
    #: Shard count / partition / backend of the gated sharded case.
    #: ``inline`` keeps the gated op count free of process-pool noise.
    sharded_shards: int = 4
    sharded_partition: str = "tier"
    sharded_backend: str = "inline"


#: Default knobs for every case; frozen, so safe as a module constant.
DEFAULT_CASE_CONFIG = BenchCaseConfig()


def bench_fleet_infer(
    n: int,
    with_reference: bool = True,
    config: BenchCaseConfig = DEFAULT_CASE_CONFIG,
) -> BenchRecord:
    """Concurrent fleet inference over 3 distinct tiny profiles.

    Ops are the fleet's deterministic probe-operation total (flow
    installs + RTT measurements across every full probe run) -- a pure
    function of (profiles, seed, knobs).  A change that defeats the
    model cache or the single-flight coalescing multiplies full probe
    runs and blows the op count up ~4x, which the gate catches; the
    virtual makespan/sequential-sum ratio lands in the detail for the
    BENCH trajectory.
    """
    del with_reference  # trajectory-only; inference had no sequential-fleet arm
    size = min(n, config.fleet_member_cap)
    registry = MetricsRegistry()
    engine = FleetInferenceEngine(
        build_fleet(fleet_bench_profiles(), size),
        seed=3,
        metrics=registry,
        **FLEET_BENCH_KNOBS,
    )
    wall_ms, result = _timed(lambda: engine.infer_fleet(include_policy=False))
    record = BenchRecord(
        case="fleet_infer", n=size, wall_ms=wall_ms, ops=result.probe_ops
    )
    record.detail = {
        "makespan_ms": result.makespan_ms,
        "sequential_sum_ms": result.sequential_sum_ms,
        "speedup_virtual": round(result.speedup, 3),
        "full_probe_runs": result.full_probe_runs,
        "cache_hits": result.cache_hits,
        "coalesced_joins": result.coalesced_joins,
        "attribution": registry.snapshot(),
    }
    return record


def bench_serve_churn(n: int, with_reference: bool = True) -> BenchRecord:
    """Sustained serving under flow churn against a 96-rule budget.

    Runs :class:`repro.serve.ServeLoop` over ``n`` Zipf/churn arrivals
    (see :func:`repro.perf.workloads.serve_churn_config`).  Ops are the
    loop's deterministic operation total — one per table lookup plus
    every DAG edge visit, ready yield, and issued request across all
    install batches — a pure function of ``n``, so a caching change
    that defeats admission coalescing or plans redundant evictions
    shows up as an op-count blowup the gate catches.  The ``detail``
    carries the full serving summary (requests/sec, p50/p99 install
    latency, hit/evict/aggregate counters, final occupancy) — the
    ``serve_churn`` BENCH block EXPERIMENTS.md interprets.
    """
    del with_reference  # trajectory-only; serving is a new subsystem
    from repro.serve import ServeLoop

    registry = MetricsRegistry()
    loop = ServeLoop(serve_churn_config(n), serve_bench_profile(), metrics=registry)
    wall_ms, result = _timed(loop.run)
    record = BenchRecord(case="serve_churn", n=n, wall_ms=wall_ms, ops=result.op_count)
    record.detail = {
        "serve": result.to_dict(),
        "attribution": registry.snapshot(),
    }
    return record


def bench_sharded_fleet(
    n: int,
    with_reference: bool = True,
    config: BenchCaseConfig = DEFAULT_CASE_CONFIG,
) -> BenchRecord:
    """Sharded fleet inference over tier-named, distinct-fingerprint
    profiles, merged back into the global record order.

    Ops are the merged fleet's deterministic probe-operation total, a
    pure function of (profiles, seed, knobs, shard count) -- identical
    to a single-queue run by the merge protocol's byte-identity
    guarantee, which the reference arm checks outright: the legacy
    :class:`FleetInferenceEngine` runs the same fleet and the record
    asserts equal summaries, models, and TangoDB contents
    (``detail["identical"]``).  The gate therefore catches both classic
    op blowups (defeated cache/coalescing) and merge bugs that drop or
    duplicate shard journals.  Runs the ``inline`` backend so gated
    numbers carry no process-pool noise; wall-clock scaling across real
    worker processes is the separate ungated fleet-scaling block.
    """
    size = min(n, config.sharded_member_cap)
    profiles = sharded_fleet_profiles(size)
    engine = ShardedFleetEngine(
        build_fleet(profiles, size),
        seed=3,
        shards=config.sharded_shards,
        partition=config.sharded_partition,
        backend=config.sharded_backend,
        **SHARDED_BENCH_KNOBS,
    )
    wall_ms, result = _timed(lambda: engine.infer_fleet(include_policy=False))
    record = BenchRecord(
        case="sharded_fleet", n=size, wall_ms=wall_ms, ops=result.probe_ops
    )
    stats = engine.shard_stats
    record.detail = {
        "makespan_ms": result.makespan_ms,
        "sequential_sum_ms": result.sequential_sum_ms,
        "speedup_virtual": round(result.speedup, 3),
        "full_probe_runs": result.full_probe_runs,
        "cache_hits": result.cache_hits,
        "coalesced_joins": result.coalesced_joins,
        "shards": stats,
    }
    if with_reference:
        reference = FleetInferenceEngine(
            build_fleet(profiles, size),
            seed=3,
            **SHARDED_BENCH_KNOBS,
        )
        ref_wall_ms, ref_result = _timed(
            lambda: reference.infer_fleet(include_policy=False)
        )
        _with_reference(record, ref_wall_ms, ref_result.probe_ops)
        record.identical = _fleet_signature(result) == _fleet_signature(
            ref_result
        ) and _db_signature(engine.scores) == _db_signature(reference.scores)
    return record


def collect_fleet_scaling(
    members: int = 1024,
    shard_counts: Sequence[int] = (1, 2, 4),
    backend: str = "process",
    partition: str = "tier",
) -> Dict[str, object]:
    """The ungated wall-clock scaling block for the bench report.

    Runs the same ``members``-switch fleet (every member a distinct
    fingerprint, so no coalescing collapses the work) at each shard
    count over real worker processes and reports wall-clock speedup
    versus the 1-shard arm.  Wall time is machine-dependent, so this
    never gates: the honest context (``cpu_count``) rides along, and
    the deterministic cross-check — every arm's summary must be
    byte-identical JSON — is what a regression in the merge protocol
    would trip.  Target: >=2x at 4 shards on a 4-core runner.
    """
    profiles = sharded_fleet_profiles(members)
    runs: List[Dict[str, object]] = []
    baseline_wall: Optional[float] = None
    baseline_summary: Optional[str] = None
    summaries_identical = True
    for shards in shard_counts:
        engine = ShardedFleetEngine(
            build_fleet(profiles, members),
            scores=TangoScoreDatabase(),
            seed=3,
            shards=shards,
            partition=partition,
            backend=backend,
            **SHARDED_BENCH_KNOBS,
        )
        wall_ms, result = _timed(
            lambda engine=engine: engine.infer_fleet(include_policy=False)
        )
        summary = json.dumps(result.summary(), sort_keys=True)
        if baseline_wall is None:
            baseline_wall = wall_ms
            baseline_summary = summary
        elif summary != baseline_summary:
            summaries_identical = False
        stats = engine.shard_stats
        runs.append(
            {
                "shards": shards,
                "workers": stats.get("workers"),
                "wall_ms": round(wall_ms, 3),
                "makespan_ms": result.makespan_ms,
                "probe_ops": result.probe_ops,
                "cross_shard_coalesced": stats.get("cross_shard_coalesced"),
                "speedup_wall_vs_1shard": round(baseline_wall / wall_ms, 3)
                if wall_ms
                else None,
            }
        )
    return {
        "gated": False,
        "note": (
            "wall-clock scaling over worker processes; machine-dependent, "
            "never gated — speedup tracks min(shards, cpu_count)"
        ),
        "members": members,
        "backend": backend,
        "partition": partition,
        "cpu_count": os.cpu_count(),
        "target_speedup_at_4_shards": 2.0,
        "summaries_identical": summaries_identical,
        "runs": runs,
    }


_CASES = (
    bench_chain_schedule,
    bench_layered_schedule,
    bench_descending_shifts,
    bench_prefix_lookahead,
    bench_faulted_schedule,
    bench_fleet_infer,
    bench_sharded_fleet,
    bench_serve_churn,
)

#: Case-name -> bench function, for ``run_suite(cases=...)`` / ``--cases``.
CASE_NAMES: Dict[str, Callable[..., BenchRecord]] = {
    "chain_schedule": bench_chain_schedule,
    "layered_schedule": bench_layered_schedule,
    "descending_shifts": bench_descending_shifts,
    "prefix_lookahead": bench_prefix_lookahead,
    "faulted_schedule": bench_faulted_schedule,
    "fleet_infer": bench_fleet_infer,
    "sharded_fleet": bench_sharded_fleet,
    "serve_churn": bench_serve_churn,
}


def _fleet_signature(result) -> Tuple:
    """Byte-comparable digest of a fleet run (models, timing, ops)."""
    import json

    return tuple(
        (
            member.name,
            json.dumps(member.model.to_dict(), sort_keys=True),
            member.started_ms,
            member.finished_ms,
            member.cache_hit,
            member.coalesced,
            member.probe_ops,
        )
        for member in result.members
    ) + (result.makespan_ms,)


def _noop_fleet_run(tracer, metrics, telemetry=None, scores=None):
    engine = FleetInferenceEngine(
        build_fleet(fleet_bench_profiles()[:2], 3),
        scores=scores,
        seed=9,
        max_in_flight=2,
        tracer=tracer,
        metrics=metrics,
        telemetry=telemetry,
        **FLEET_BENCH_KNOBS,
    )
    return engine.infer_fleet(include_policy=False)


def _db_signature(db) -> Tuple:
    """Byte-comparable digest of TangoDB contents, in insertion order."""
    return tuple(
        (record.key, repr(record.value), record.recorded_at_ms, record.source)
        for record in db.records()
    )


def _bench_collector():
    """A collector configured the way the no-op check attaches it."""
    from repro.obs.slo import SloPolicy, default_slo_targets
    from repro.obs.telemetry import TelemetryCollector

    collector = TelemetryCollector(interval_ms=5.0, window_ms=50.0)
    collector.add_policy(SloPolicy(default_slo_targets()))
    return collector


def verify_noop_instrumentation(n: int = 1000) -> Dict[str, object]:
    """Assert that attached telemetry never changes scheduling work.

    Runs the layered case twice -- bare, then with a live tracer and
    metrics registry -- and requires identical schedule signatures and
    DAG op counts; does the same for the prefix scheduler's incremental
    planner on the unlock workload (full per-record identity, since the
    planner is the hot path this suite guards); then the same with a
    small concurrent fleet inference run (identical models, member
    timelines, and probe op counts).

    A continuous :class:`~repro.obs.telemetry.TelemetryCollector` is
    held to the same bar: attached to the layered schedule and the fleet
    run it may not change schedule signatures, op counts, or TangoDB
    contents, and two same-seed collector runs must serialize to
    byte-identical telemetry JSONL.  Raises :class:`AssertionError` on
    any divergence; returns the comparison payload for reporting.
    """
    from repro.core.scores import TangoScoreDatabase
    from repro.obs.telemetry import telemetry_jsonl_lines
    from repro.obs.trace import Tracer

    bare_dag = layered_dag(n)
    bare_dag.ops.clear()
    bare = BasicTangoScheduler(fast_executor()).schedule(bare_dag)

    traced_dag = layered_dag(n)
    traced_dag.ops.clear()
    tracer = Tracer()
    scheduler = BasicTangoScheduler(
        fast_executor(), tracer=tracer, metrics=MetricsRegistry()
    )
    traced = scheduler.schedule(traced_dag)

    prefix_n = min(n, 240)
    prefix_bare_dag = unlock_groups_dag(prefix_n)
    prefix_bare_dag.ops.clear()
    prefix_bare = PrefixTangoScheduler(
        fast_executor("a", "b"), estimate=_unlock_estimate, lookahead_depth=2
    ).schedule(prefix_bare_dag)

    prefix_traced_dag = unlock_groups_dag(prefix_n)
    prefix_traced_dag.ops.clear()
    prefix_tracer = Tracer()
    prefix_traced = PrefixTangoScheduler(
        fast_executor("a", "b"),
        estimate=_unlock_estimate,
        lookahead_depth=2,
        tracer=prefix_tracer,
        metrics=MetricsRegistry(),
    ).schedule(prefix_traced_dag)

    bare_fleet_db = TangoScoreDatabase()
    bare_fleet = _noop_fleet_run(tracer=None, metrics=None, scores=bare_fleet_db)
    fleet_tracer = Tracer()
    traced_fleet = _noop_fleet_run(tracer=fleet_tracer, metrics=MetricsRegistry())

    # Continuous flow telemetry: same run, collector attached.
    tele_dag = layered_dag(n)
    tele_dag.ops.clear()
    tele_collector = _bench_collector()
    tele_executor = fast_executor(telemetry=tele_collector)
    tele = BasicTangoScheduler(tele_executor).schedule(tele_dag)
    tele_collector.finish(tele_executor.now_ms())

    # ... and again: same seed, same workload, byte-identical stream.
    retele_dag = layered_dag(n)
    retele_dag.ops.clear()
    re_collector = _bench_collector()
    re_executor = fast_executor(telemetry=re_collector)
    BasicTangoScheduler(re_executor).schedule(retele_dag)
    re_collector.finish(re_executor.now_ms())

    fleet_collector = _bench_collector()
    tele_fleet_db = TangoScoreDatabase()
    tele_fleet = _noop_fleet_run(
        tracer=None, metrics=None, telemetry=fleet_collector, scores=tele_fleet_db
    )

    payload: Dict[str, object] = {
        "bare_ops": bare_dag.ops.total(),
        "traced_ops": traced_dag.ops.total(),
        "signatures_equal": _schedule_signature(bare) == _schedule_signature(traced),
        "trace_events": len(tracer),
        "prefix_bare_ops": prefix_bare_dag.ops.total(),
        "prefix_traced_ops": prefix_traced_dag.ops.total(),
        "prefix_signatures_equal": (
            _schedule_signature(prefix_bare) == _schedule_signature(prefix_traced)
            and _record_signature(prefix_bare) == _record_signature(prefix_traced)
        ),
        "prefix_trace_events": len(prefix_tracer),
        "fleet_bare_ops": bare_fleet.probe_ops,
        "fleet_traced_ops": traced_fleet.probe_ops,
        "fleet_signatures_equal": (
            _fleet_signature(bare_fleet) == _fleet_signature(traced_fleet)
        ),
        "fleet_trace_events": len(fleet_tracer),
        "collector_ops": tele_dag.ops.total(),
        "collector_signatures_equal": (
            _schedule_signature(bare) == _schedule_signature(tele)
        ),
        "collector_samples": len(tele_collector.samples),
        "collector_stream_identical": (
            telemetry_jsonl_lines(tele_collector.samples)
            == telemetry_jsonl_lines(re_collector.samples)
        ),
        "fleet_collector_samples": len(fleet_collector.samples),
        "fleet_collector_signatures_equal": (
            _fleet_signature(bare_fleet) == _fleet_signature(tele_fleet)
        ),
        "fleet_db_identical": (
            _db_signature(bare_fleet_db) == _db_signature(tele_fleet_db)
        ),
    }
    if payload["bare_ops"] != payload["traced_ops"] or not payload["signatures_equal"]:
        raise AssertionError(f"telemetry changed scheduler work: {payload}")
    if (
        payload["prefix_bare_ops"] != payload["prefix_traced_ops"]
        or not payload["prefix_signatures_equal"]
    ):
        raise AssertionError(f"telemetry changed prefix planner work: {payload}")
    if (
        payload["fleet_bare_ops"] != payload["fleet_traced_ops"]
        or not payload["fleet_signatures_equal"]
    ):
        raise AssertionError(f"telemetry changed fleet inference work: {payload}")
    if (
        payload["bare_ops"] != payload["collector_ops"]
        or not payload["collector_signatures_equal"]
    ):
        raise AssertionError(f"flow collector changed scheduler work: {payload}")
    if not payload["collector_stream_identical"]:
        raise AssertionError(
            f"same-seed collector runs produced different streams: {payload}"
        )
    if not payload["fleet_collector_signatures_equal"]:
        raise AssertionError(f"flow collector changed fleet inference: {payload}")
    if not payload["fleet_db_identical"]:
        raise AssertionError(f"flow collector changed TangoDB contents: {payload}")
    return payload


def run_suite(
    sizes: Optional[Sequence[int]] = None,
    quick: bool = False,
    with_reference: bool = True,
    cases: Optional[Sequence[str]] = None,
) -> List[BenchRecord]:
    """Run the selected cases at every size; dedupe (case, n) collisions.

    ``cases`` filters by name (see :data:`CASE_NAMES`); ``None`` runs
    them all.  Unknown names raise :class:`ValueError`.
    """
    if sizes is None:
        sizes = QUICK_SIZES if quick else FULL_SIZES
    if cases is None:
        selected = list(_CASES)
    else:
        unknown = [name for name in cases if name not in CASE_NAMES]
        if unknown:
            raise ValueError(
                f"unknown bench cases {unknown}; known: {sorted(CASE_NAMES)}"
            )
        selected = [CASE_NAMES[name] for name in cases]
    # Telemetry must be free: a tracer/metrics attach that altered the
    # deterministic op counts would also poison the regression gate below.
    verify_noop_instrumentation()
    # So must a zero-fault injector: wrapping channels with an empty
    # FaultPlan may not change a single schedule bit.
    verify_noop_injection()
    records: List[BenchRecord] = []
    seen = set()
    for n in sizes:
        for case in selected:
            record = case(n, with_reference=with_reference)
            if record.key in seen:
                continue  # e.g. fleet_infer capped to the same size
            seen.add(record.key)
            records.append(record)
    return records


def compare_to_baseline(
    records: Sequence[BenchRecord], baseline: Dict[str, int]
) -> List[Dict[str, object]]:
    """Op-count regressions vs the checked-in baseline.

    Only keys present in both are compared, so a quick run gates against
    the quick-size subset of the full baseline.
    """
    regressions: List[Dict[str, object]] = []
    for record in records:
        expected = baseline.get(record.key)
        if expected is None:
            continue
        if expected == 0:
            # A zero baseline still gates: any ops at all is a regression
            # (ratio is undefined, reported as null).
            if record.ops > 0:
                regressions.append(
                    {
                        "key": record.key,
                        "baseline_ops": expected,
                        "ops": record.ops,
                        "ratio": None,
                    }
                )
            continue
        ratio = record.ops / expected
        if ratio > REGRESSION_THRESHOLD:
            regressions.append(
                {
                    "key": record.key,
                    "baseline_ops": expected,
                    "ops": record.ops,
                    "ratio": round(ratio, 3),
                }
            )
    return regressions


def baseline_from_records(records: Sequence[BenchRecord]) -> Dict[str, int]:
    return {record.key: record.ops for record in records}


def collect_suite_telemetry(n: int = 1000) -> Dict[str, object]:
    """The ungated ``telemetry`` block for ``BENCH_scheduler.json``.

    Runs the layered workload once with a continuous
    :class:`~repro.obs.telemetry.TelemetryCollector` attached and
    reports the collector's counter roll-up.  Like the ``wall_clock``
    block this is informational only: the regression gate never reads
    it, and :func:`verify_noop_instrumentation` has already proven the
    collector cannot change the gated op counts.
    """
    from repro.obs.telemetry import summarize_telemetry

    dag = layered_dag(n)
    collector = _bench_collector()
    executor = fast_executor(telemetry=collector)
    BasicTangoScheduler(executor).schedule(dag)
    collector.finish(executor.now_ms())
    summary = summarize_telemetry(collector.samples)
    return {
        "gated": False,
        "note": (
            "continuous-telemetry counters are informational only; "
            "verify_noop_instrumentation proves the attached collector "
            "never changes the gated op counts"
        ),
        "workload": f"layered_schedule:{n}",
        "stats": collector.stats(),
        "span_ms": summary["span_ms"],
        "series": summary["series"],
    }


def records_to_report(
    records: Sequence[BenchRecord],
    regressions: Sequence[Dict[str, object]],
    quick: bool,
    baseline_path: Optional[str],
    telemetry: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The ``BENCH_scheduler.json`` document.

    ``telemetry`` is the ungated continuous-telemetry block; when
    ``None`` it is produced by :func:`collect_suite_telemetry`.
    """
    if telemetry is None:
        telemetry = collect_suite_telemetry()
    mismatched = [r.key for r in records if r.identical is False]
    wall_clock = {
        "gated": False,
        "note": (
            "wall-clock trajectories are informational only; the gate "
            "compares deterministic op counts, which cannot flake with "
            "machine load"
        ),
        "total_wall_ms": round(sum(r.wall_ms for r in records), 3),
        "per_case": [
            {
                "key": r.key,
                "wall_ms": round(r.wall_ms, 3),
                "ref_wall_ms": (
                    round(r.ref_wall_ms, 3) if r.ref_wall_ms is not None else None
                ),
                "speedup_wall": (
                    round(r.speedup_wall, 3) if r.speedup_wall is not None else None
                ),
            }
            for r in records
        ],
    }
    return {
        "suite": "scheduler-hot-paths",
        "quick": quick,
        "threshold": REGRESSION_THRESHOLD,
        "baseline_path": baseline_path,
        "results": [asdict(record) for record in records],
        "wall_clock": wall_clock,
        "telemetry": telemetry,
        "regressions": list(regressions),
        "mismatched": mismatched,
        "ok": not regressions and not mismatched,
    }
