"""Deterministic workload builders for the ``tango-bench`` suite.

Every builder is a pure function of its arguments: same ``n`` -> same
DAG, same priorities, same request ids.  The executor is a single
simulated switch with zero jitter and flat per-op costs, so schedule
results (makespan, rounds, pattern choices) are exactly reproducible and
comparable between the optimized and reference scheduler arms.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.requests import RequestDag, SwitchRequest
from repro.core.scheduler import NetworkExecutor
from repro.openflow.channel import ControlChannel
from repro.openflow.match import IpPrefix, Match
from repro.openflow.messages import FlowModCommand
from repro.sim.latency import ConstantLatency
from repro.switches.base import ControlCostModel, SimulatedSwitch
from repro.switches.profiles import SwitchProfile, make_cache_test_profile
from repro.tables.policies import FIFO, LIFO, LRU
from repro.tables.stack import TableLayer


def _match(index: int) -> Match:
    return Match(eth_type=0x0800, ip_dst=IpPrefix(index & 0xFFFFFFFF, 32))


def fast_executor(
    *locations: str, seed: int = 1, fault_injector=None, telemetry=None
) -> NetworkExecutor:
    """Unbounded, jitter-free switches with flat per-op costs.

    With a ``fault_injector`` (:class:`repro.faults.FaultInjector`), the
    channels are wrapped so the injector's seeded plan applies — used by
    the faulted bench case and the no-op injection check.  ``telemetry``
    (a :class:`repro.obs.telemetry.TelemetryCollector`) attaches a
    continuous-telemetry collector to the executor — used by the no-op
    instrumentation check and the bench report's telemetry block.
    """
    channels = {}
    for offset, location in enumerate(locations or ("sw",)):
        switch = SimulatedSwitch(
            name=location,
            layers=[TableLayer("t", capacity=None)],
            policy=FIFO,
            layer_delays=[ConstantLatency(0.01)],
            control_path_delay=ConstantLatency(0.1),
            cost_model=ControlCostModel(
                add_base_ms=0.2,
                shift_ms=0.0,
                priority_group_ms=0.0,
                mod_ms=0.1,
                del_ms=0.1,
                jitter_std_frac=0.0,
            ),
            seed=seed + offset,
        )
        channels[location] = ControlChannel(switch, rtt=ConstantLatency(0.0))
    return NetworkExecutor(
        channels, fault_injector=fault_injector, telemetry=telemetry
    )


def chain_dag(n: int, location: str = "sw") -> RequestDag:
    """``n`` ADD requests in one dependency chain (worst case for the
    pre-optimization per-round ready rescan: V rounds of O(V + E))."""
    dag = RequestDag()
    previous: Optional[SwitchRequest] = None
    for index in range(n):
        request = dag.new_request(
            location, FlowModCommand.ADD, _match(index), priority=index + 1
        )
        if previous is not None:
            dag.add_dependency(previous, request, check_cycle=False)
        previous = request
    dag.validate_acyclic()
    return dag


def layered_dag(n: int, width: int = 50, location: str = "sw") -> RequestDag:
    """``n`` ADD requests in layers of ``width``; each request depends on
    one request of the previous layer.  Priorities are a deterministic
    scatter so the pattern oracle's ordering actually reorders batches.
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    dag = RequestDag()
    previous_layer: List[SwitchRequest] = []
    layer: List[SwitchRequest] = []
    for index in range(n):
        priority = (index * 37) % 1000 + 1
        request = dag.new_request(
            location, FlowModCommand.ADD, _match(index), priority=priority
        )
        if previous_layer:
            parent = previous_layer[len(layer) % len(previous_layer)]
            dag.add_dependency(parent, request, check_cycle=False)
        layer.append(request)
        if len(layer) == width:
            previous_layer, layer = layer, []
    dag.validate_acyclic()
    return dag


#: Per-request duration estimates (ms) for the unlock workload below.
UNLOCK_ESTIMATES = {"a": 5.0, "b": 1.0}


def unlock_groups_dag(n: int, group: int = 20) -> RequestDag:
    """Independent copies of the paper's "unlock" shape on switches a/b.

    Each group is one cheap blocker plus slow peers on switch ``a`` and a
    run of dependents on switch ``b`` unlocked by the blocker -- the
    scenario where prefix lookahead beats greedy batching.  Groups are
    mutually independent, so ready sets are wide (good oracle-memoization
    pressure) while round counts stay bounded.
    """
    if group < 2:
        raise ValueError("group must be at least 2")
    dag = RequestDag()
    index = 0
    while index < n:
        size = min(group, n - index)
        half = max(1, size // 2)
        blocker = dag.new_request(
            "a", FlowModCommand.ADD, _match(index), priority=1
        )
        for j in range(1, half):
            dag.new_request(
                "a", FlowModCommand.ADD, _match(index + j), priority=j + 1
            )
        for j in range(size - half):
            dag.new_request(
                "b",
                FlowModCommand.ADD,
                _match(index + half + j),
                priority=j + 1,
                after=[blocker],
            )
        index += size
    return dag


def descending_priorities(n: int) -> List[int]:
    """The TCAM-hostile install order: every add shifts all residents."""
    return list(range(n, 0, -1))


#: Engine knobs for the fleet-inference bench: tiny rule caps and batch
#: sizes keep a full probe run fast while still exercising every stage.
FLEET_BENCH_KNOBS = {
    "size_probe_max_rules": 192,
    "latency_batch_sizes": (20, 60),
}


#: Rule budget of the serve_churn bench switch: small enough that the
#: Zipf working set overflows it and eviction/aggregation churn is
#: sustained at every suite size.
SERVE_CHURN_CAPACITY = 96


def serve_bench_profile() -> SwitchProfile:
    """The serve_churn bench switch: one bounded LRU fast layer.

    A single bounded layer keeps the occupancy-ratio trajectory easy to
    read, and LRU is the policy family the FDRC-style eviction is
    designed around (recency-ranked victims).
    """
    return make_cache_test_profile(
        LRU,
        layer_sizes=(SERVE_CHURN_CAPACITY, None),
        layer_means_ms=(0.5, 4.8),
        name="serve-bench",
    )


def serve_churn_config(n: int):
    """The serve_churn bench workload: ``n`` arrivals of churning flows.

    Sixteen tenants with Zipf-skewed destinations rotate their hot sets
    every 150 virtual ms, so the cached working set decays instead of
    converging; FDRC admission (2 packet-ins) punts one-packet flows;
    the 96-rule budget forces policy-ranked eviction and wildcard
    aggregation throughout the run.  Pure function of ``n`` — same size,
    byte-identical run.
    """
    from repro.serve import ServeConfig, StreamConfig

    return ServeConfig(
        stream=StreamConfig(
            arrivals=n,
            tenants=16,
            destinations_per_tenant=64,
            rate_per_ms=2.0,
            zipf_skew=1.1,
            tenant_skew=0.6,
            churn_interval_ms=150.0,
            seed=11,
        ),
        batch_size=16,
        capacity=SERVE_CHURN_CAPACITY,
        admission_threshold=2,
        admission_window_ms=80.0,
        idle_timeout_ms=400.0,
        maintenance_interval_ms=100.0,
    )


#: Engine knobs for the sharded-fleet bench and scaling block: the
#: smallest layer/batch geometry that still runs every probe stage, so
#: a 1024-member fleet stays tractable (one full probe is ~300 virtual
#: ops instead of the fleet case's ~800).
SHARDED_BENCH_KNOBS = {
    "size_probe_max_rules": 16,
    "latency_batch_sizes": (4, 8),
}


def sharded_fleet_profiles(count: int) -> List[SwitchProfile]:
    """``count`` tier-named profiles with pairwise-distinct fingerprints.

    Each profile's first-layer mean delay carries a per-index epsilon,
    so every member fingerprints uniquely and a cold sharded run does
    ``count`` genuinely independent probes -- the honest workload for
    wall-clock scaling (shared fingerprints would let single-flight
    coalescing collapse the work).  Names follow the fat-tree tiers
    :func:`repro.core.placement.assign_tier` recognises (1/8 core, 3/8
    aggregation, the rest edge), so the ``tier`` partition strategy has
    real structure to keep pod-local.
    """
    policies = (FIFO, LRU, LIFO)
    profiles: List[SwitchProfile] = []
    for index in range(count):
        slot = index % 8
        if slot == 0:
            name = f"core-{index}"
        elif slot < 4:
            name = f"aggr-{index}"
        else:
            name = f"edge-{index}"
        profiles.append(
            make_cache_test_profile(
                policies[index % len(policies)],
                layer_sizes=(8 + index % 5, None),
                layer_means_ms=(0.4 + index * 1e-4, 4.0 + (index % 9) * 0.1),
                name=name,
            )
        )
    return profiles


def fleet_bench_profiles() -> List[SwitchProfile]:
    """Three small, distinct, deterministic profiles for fleet benches.

    Distinct layer sizes, cache policies, and path delays give each
    profile its own fingerprint (three full probe runs in a cold-cache
    fleet) and measurably different probe durations, so the fleet
    driver's interleaving actually reorders events.
    """
    return [
        make_cache_test_profile(
            FIFO, layer_sizes=(64, None), layer_means_ms=(0.5, 4.8), name="fleet-a"
        ),
        make_cache_test_profile(
            LRU, layer_sizes=(48, None), layer_means_ms=(0.6, 5.0), name="fleet-b"
        ),
        make_cache_test_profile(
            LIFO, layer_sizes=(96, None), layer_means_ms=(0.4, 4.2), name="fleet-c"
        ),
    ]
