"""Micro-benchmark harness for the scheduler/TCAM hot paths.

``tango-bench`` (also ``tango-probe bench``) times the code paths this
reproduction leans on at scale -- incremental DAG scheduling, Fenwick
shift accounting, prefix lookahead -- against the retired
pre-optimization implementations, verifies that both arms produce
bit-for-bit identical results, and gates CI on deterministic operation
counts (see :mod:`repro.perf.harness`).

This is the one package (besides the simulation substrate ``sim/``)
allowed to read the host wall clock: measured wall time is reported for
humans, while the regression gate uses op counters so it cannot flake
with machine load.
"""

from repro.perf.harness import (
    REGRESSION_THRESHOLD,
    BenchRecord,
    baseline_from_records,
    compare_to_baseline,
    run_suite,
)

__all__ = [
    "BenchRecord",
    "REGRESSION_THRESHOLD",
    "baseline_from_records",
    "compare_to_baseline",
    "run_suite",
]
