"""Pre-optimization reference implementations (the bench's slow arm).

These preserve the *algorithms* this PR's hot-path work replaced, built
on the DAG's public query API so they stay runnable as the internals
evolve.  Each tallies its work in a deterministic operation counter;
``tango-bench`` runs them next to the optimized implementations and
asserts the results are bit-for-bit identical.

* :class:`ReferenceBasicTangoScheduler` -- Algorithm 3 with the original
  per-round full rescan: every round walks all V requests and their
  in-edges to recover the independent set, making chain-shaped DAGs
  O(V * (V + E)).
* :class:`SortedListShiftModel` (re-exported from
  :mod:`repro.tables.tcam`) -- the O(n)-per-op priority-sorted list the
  Fenwick tree replaced.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.requests import RequestDag, SwitchRequest
from repro.core.scheduler import (
    BasicTangoScheduler,
    ScheduleResult,
    _count_deadline_misses,
)
from repro.tables.tcam import SortedListShiftModel

__all__ = ["ReferenceBasicTangoScheduler", "SortedListShiftModel"]


class ReferenceBasicTangoScheduler(BasicTangoScheduler):
    """Greedy pattern-oracle scheduling with per-round ready rescans.

    Identical issue order, timings, and pattern choices to
    :class:`~repro.core.scheduler.BasicTangoScheduler`; only the ready-set
    discovery differs.  ``scan_ops`` counts requests and in-edges visited
    by the rescans -- the work the incremental ready set eliminated.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.scan_ops = 0

    def _scan_independent(
        self, dag: RequestDag, done: Set[int]
    ) -> List[SwitchRequest]:
        """The historical O(V + E) scan: check every request's in-edges."""
        ready: List[SwitchRequest] = []
        for request in dag.requests:
            rid = request.request_id
            if rid in done:
                continue
            predecessors = dag.predecessor_ids(rid)
            self.scan_ops += 1 + len(predecessors)
            if all(p in done for p in predecessors):
                ready.append(request)
        return ready

    def schedule(self, dag: RequestDag) -> ScheduleResult:
        self.executor.reset_epoch()
        result = ScheduleResult(makespan_ms=0.0)
        finish_times: Dict[int, float] = {}
        done: Set[int] = set()
        makespan = self.executor.epoch_ms
        total = len(dag)
        while len(done) < total:
            independent = self._scan_independent(dag, done)
            if not independent:
                raise RuntimeError("DAG not done but no independent requests")
            pattern, ordered = self.oracle.choose(independent)
            result.pattern_choices.append(pattern.name)
            for request in ordered:
                dep_finish = max(
                    (
                        finish_times[p]
                        for p in dag.predecessor_ids(request.request_id)
                    ),
                    default=self.executor.epoch_ms,
                )
                record = self.executor.issue(request, not_before_ms=dep_finish)
                finish_times[request.request_id] = record.finished_ms
                result.records.append(record)
                done.add(request.request_id)
                makespan = max(makespan, record.finished_ms)
            result.rounds += 1
        result.makespan_ms = makespan - self.executor.epoch_ms
        result.deadline_misses = _count_deadline_misses(
            result.records, self.executor.epoch_ms
        )
        return result
