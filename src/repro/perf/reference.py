"""Pre-optimization reference implementations (the bench's slow arm).

These preserve the *algorithms* this PR's hot-path work replaced, built
on the DAG's public query API so they stay runnable as the internals
evolve.  Each tallies its work in a deterministic operation counter;
``tango-bench`` runs them next to the optimized implementations and
asserts the results are bit-for-bit identical.

* :class:`ReferenceBasicTangoScheduler` -- Algorithm 3 with the original
  per-round full rescan: every round walks all V requests and their
  in-edges to recover the independent set, making chain-shaped DAGs
  O(V * (V + E)).
* :class:`_ReferencePrefixPlanner` /
  :class:`ReferencePrefixTangoScheduler` -- the retired recursive
  prefix planner, whose depth-0 estimate greedily re-simulates the
  *entire remaining DAG* per plan node (and whose scheduling loop
  re-derives and re-sorts the full ready set every round), making the
  unlock workload ~O(n^2).  The incremental
  :class:`~repro.core.planner.TailCostPlanner` replaced it; the
  differential suite pins both to byte-identical decisions and
  schedules.
* :class:`SortedListShiftModel` (re-exported from
  :mod:`repro.tables.tcam`) -- the O(n)-per-op priority-sorted list the
  Fenwick tree replaced.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.requests import ReadySimulation, RequestDag, SwitchRequest
from repro.core.scheduler import (
    BasicTangoScheduler,
    PrefixTangoScheduler,
    ScheduleResult,
    _count_deadline_misses,
)
from repro.tables.tcam import SortedListShiftModel

__all__ = [
    "ReferenceBasicTangoScheduler",
    "ReferencePrefixTangoScheduler",
    "_ReferencePrefixPlanner",
    "SortedListShiftModel",
]

#: The quadratic reference prefix arm is not run beyond this size.
PREFIX_REFERENCE_CAP = 2000


class ReferenceBasicTangoScheduler(BasicTangoScheduler):
    """Greedy pattern-oracle scheduling with per-round ready rescans.

    Identical issue order, timings, and pattern choices to
    :class:`~repro.core.scheduler.BasicTangoScheduler`; only the ready-set
    discovery differs.  ``scan_ops`` counts requests and in-edges visited
    by the rescans -- the work the incremental ready set eliminated.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.scan_ops = 0

    def _scan_independent(
        self, dag: RequestDag, done: Set[int]
    ) -> List[SwitchRequest]:
        """The historical O(V + E) scan: check every request's in-edges."""
        ready: List[SwitchRequest] = []
        for request in dag.requests:
            rid = request.request_id
            if rid in done:
                continue
            predecessors = dag.predecessor_ids(rid)
            self.scan_ops += 1 + len(predecessors)
            if all(p in done for p in predecessors):
                ready.append(request)
        return ready

    def schedule(self, dag: RequestDag) -> ScheduleResult:
        self.executor.reset_epoch()
        result = ScheduleResult(makespan_ms=0.0)
        finish_times: Dict[int, float] = {}
        done: Set[int] = set()
        makespan = self.executor.epoch_ms
        total = len(dag)
        while len(done) < total:
            independent = self._scan_independent(dag, done)
            if not independent:
                raise RuntimeError("DAG not done but no independent requests")
            pattern, ordered = self.oracle.choose(independent)
            result.pattern_choices.append(pattern.name)
            for request in ordered:
                dep_finish = max(
                    (
                        finish_times[p]
                        for p in dag.predecessor_ids(request.request_id)
                    ),
                    default=self.executor.epoch_ms,
                )
                record = self.executor.issue(request, not_before_ms=dep_finish)
                finish_times[request.request_id] = record.finished_ms
                result.records.append(record)
                done.add(request.request_id)
                makespan = max(makespan, record.finished_ms)
            result.rounds += 1
        result.makespan_ms = makespan - self.executor.epoch_ms
        result.deadline_misses = _count_deadline_misses(
            result.records, self.executor.epoch_ms
        )
        return result


class _ReferencePrefixPlanner:
    """The retired recursive prefix planner (pre tail-cost-cache).

    Kept verbatim as the differential oracle, mirroring the
    ``SortedListShiftModel`` pattern: its depth-0 branch batches
    greedily to completion by *walking the whole remaining DAG* --
    re-deriving and re-sorting every successive ready set -- once per
    plan node, and its depth>0 branch rebuilds per-prefix makespan
    estimates from scratch for every candidate cut.
    """

    def __init__(self, scheduler: "PrefixTangoScheduler") -> None:
        self._scheduler = scheduler

    def plan(
        self, sim: ReadySimulation, depth: int
    ) -> Tuple[float, Optional[int]]:
        scheduler = self._scheduler
        dag = sim.dag
        ready = sim.ready()
        if not ready:
            return 0.0, None
        _, ordered = scheduler.oracle.choose(ready)

        if depth <= 0:
            # Greedy full batches to completion, iteratively (a deep
            # recursion here would overflow on chain-shaped DAGs).
            first_cut = len(ordered)
            total = 0.0
            frames = 0
            while ready:
                total += scheduler._estimate_batch_ms(ordered)
                sim.complete([r.request_id for r in ordered])
                frames += 1
                ready = sim.ready()
                if ready:
                    _, ordered = scheduler.oracle.choose(ready)
            for _ in range(frames):
                sim.undo()
            return total, first_cut

        best_cost = float("inf")
        best_cut: Optional[int] = None
        for cut in scheduler._candidate_cuts(dag, ordered) + [len(ordered)]:
            prefix = ordered[:cut]
            sim.complete([r.request_id for r in prefix])
            rest, _ = self.plan(sim, depth - 1)
            sim.undo()
            cost = scheduler._estimate_batch_ms(prefix) + rest
            if cost < best_cost:
                best_cost = cost
                best_cut = cut
        return best_cost, best_cut


class ReferencePrefixTangoScheduler(PrefixTangoScheduler):
    """Prefix scheduling with the retired recursive planner.

    Identical schedules (issue order, timings, rounds, pattern choices)
    to :class:`~repro.core.scheduler.PrefixTangoScheduler`; only the
    planning machinery differs.  The scheduling loop is the retired
    one too: every round pays a full ``independent_requests`` +
    ``oracle.choose`` pass on top of the planner's greedy re-walks, so
    ``dag.ops`` counts the quadratic work the incremental planner
    eliminated.
    """

    def _plan(
        self, sim: ReadySimulation, depth: int
    ) -> Tuple[float, Optional[int]]:
        return _ReferencePrefixPlanner(self).plan(sim, depth)

    def schedule(self, dag: RequestDag) -> ScheduleResult:
        result = self._begin_schedule(dag)
        finish_times: Dict[int, float] = {}
        makespan = self.executor.epoch_ms
        sim = dag.simulation(dag.done_ids)
        while not dag.is_done():
            independent = dag.independent_requests()
            if not independent:
                raise RuntimeError("DAG not done but no independent requests")
            pattern, ordered = self.oracle.choose(independent)

            _, cut = self._plan(sim, self.lookahead_depth)
            issue_now = ordered[: self._resolve_cut(cut, len(ordered))]

            result.pattern_choices.append(pattern.name)
            span = self._open_batch_span(pattern.name, issue_now, result.rounds)
            if self.tracer.enabled:
                span.set(ready=len(ordered), cut=len(issue_now))
            batch_start = len(result.records)
            batch_start_ms = self.executor.now_ms() if self.tracer.enabled else 0.0
            issued: List[SwitchRequest] = []
            for request in issue_now:
                dep_finish = self._dep_finish(dag, request, finish_times)
                record = self._issue_or_defer(
                    dag, request, dep_finish, finish_times, result
                )
                if record is not None:
                    issued.append(request)
                    makespan = max(makespan, record.finished_ms)
            self._close_batch_span(
                span, batch_start_ms, result.records[batch_start:]
            )
            self._m_batches.inc()
            self._m_requests.inc(len(issue_now))
            sim.commit(r.request_id for r in issued)
            result.rounds += 1
        return self._finalize_schedule(result, makespan)
