"""The ``tango-bench`` command-line tool.

Runs the hot-path micro-benchmark suite (:mod:`repro.perf.harness`),
prints a speedup table, writes ``BENCH_scheduler.json``, and exits 1 on
an op-count regression against ``benchmarks/perf_baseline.json`` or on
any optimized-vs-reference result mismatch.

Usage::

    tango-bench                      # full sizes (1k / 5k / 20k)
    tango-bench --quick              # CI smoke: 1k only
    tango-bench --update-baseline    # refresh the checked-in op counts
    python -m repro.perf.cli --quick --output BENCH_scheduler.json

Also mounted as ``tango-probe bench`` alongside the other operator
subcommands.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.perf.harness import (
    CASE_NAMES,
    baseline_from_records,
    collect_fleet_scaling,
    compare_to_baseline,
    records_to_report,
    run_suite,
)

DEFAULT_BASELINE = Path("benchmarks") / "perf_baseline.json"
DEFAULT_OUTPUT = "BENCH_scheduler.json"


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke sizes only (n=1000); what the CI perf-smoke job runs",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="explicit request/rule counts (overrides --quick)",
    )
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help=f"trajectory JSON path (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="op-count baseline JSON; gate is skipped when missing",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write this run's op counts to the baseline and exit 0",
    )
    parser.add_argument(
        "--no-reference",
        action="store_true",
        help="skip the slow pre-optimization reference arms",
    )
    parser.add_argument(
        "--cases",
        nargs="+",
        default=None,
        choices=sorted(CASE_NAMES),
        metavar="CASE",
        help=f"run only these cases (default: all of {sorted(CASE_NAMES)})",
    )
    parser.add_argument(
        "--fleet-scaling",
        default=None,
        metavar="PATH",
        help=(
            "also run the ungated sharded-fleet wall-clock scaling block "
            "(1024 members over worker processes by default) and write it "
            "to PATH, e.g. BENCH_fleet_scaling.json"
        ),
    )
    parser.add_argument(
        "--fleet-scaling-members",
        type=int,
        default=1024,
        metavar="N",
        help="fleet size of the --fleet-scaling run (default: 1024)",
    )
    parser.add_argument(
        "--fleet-scaling-shards",
        type=int,
        nargs="+",
        default=(1, 2, 4),
        metavar="S",
        help="shard counts of the --fleet-scaling run (default: 1 2 4)",
    )


def _fmt_speedup(value) -> str:
    return f"{value:8.1f}x" if value is not None else "       --"


def _print_table(records, out) -> None:
    header = (
        f"{'case':<20} {'n':>6} {'wall_ms':>10} {'ops':>12} "
        f"{'ref_wall':>10} {'ref_ops':>12} {'x_wall':>9} {'x_ops':>9}  same"
    )
    print(header, file=out)
    print("-" * len(header), file=out)
    for r in records:
        ref_wall = f"{r.ref_wall_ms:10.1f}" if r.ref_wall_ms is not None else "        --"
        ref_ops = f"{r.ref_ops:12d}" if r.ref_ops is not None else "          --"
        same = {True: "yes", False: "NO", None: "--"}[r.identical]
        print(
            f"{r.case:<20} {r.n:>6} {r.wall_ms:10.1f} {r.ops:>12} "
            f"{ref_wall} {ref_ops} {_fmt_speedup(r.speedup_wall)} "
            f"{_fmt_speedup(r.speedup_ops)}  {same}",
            file=out,
        )


def run_bench(args, out) -> int:
    records = run_suite(
        sizes=args.sizes,
        quick=args.quick,
        with_reference=not args.no_reference,
        cases=args.cases,
    )

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(
            json.dumps(baseline_from_records(records), indent=2, sort_keys=True)
            + "\n"
        )
        _print_table(records, out)
        print(f"baseline updated: {baseline_path}", file=out)
        return 0

    baseline = {}
    gated = baseline_path.is_file()
    if gated:
        baseline = json.loads(baseline_path.read_text())
    regressions = compare_to_baseline(records, baseline)
    report = records_to_report(
        records,
        regressions,
        quick=bool(args.quick and not args.sizes),
        baseline_path=str(baseline_path) if gated else None,
    )
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    if getattr(args, "fleet_scaling", None):
        scaling = collect_fleet_scaling(
            members=args.fleet_scaling_members,
            shard_counts=tuple(args.fleet_scaling_shards),
        )
        Path(args.fleet_scaling).write_text(json.dumps(scaling, indent=2) + "\n")
        print(f"fleet scaling written: {args.fleet_scaling}", file=out)
        fastest = max(
            scaling["runs"], key=lambda run: run["speedup_wall_vs_1shard"] or 0.0
        )
        print(
            f"fleet scaling: {scaling['members']} members, best "
            f"{fastest['speedup_wall_vs_1shard']}x at {fastest['shards']} shards "
            f"(cpu_count={scaling['cpu_count']}, ungated)",
            file=out,
        )
        if not scaling["summaries_identical"]:
            print(
                "MISMATCH fleet_scaling: shard counts produced different "
                "summaries",
                file=out,
            )
            return 1

    _print_table(records, out)
    print(f"\ntrajectory written: {args.output}", file=out)
    if not gated:
        print(f"baseline {baseline_path} missing; regression gate skipped", file=out)
    for regression in regressions:
        ratio = regression["ratio"]
        detail = f"{ratio}x > threshold" if ratio is not None else "baseline is 0 ops"
        print(
            f"REGRESSION {regression['key']}: {regression['ops']} ops vs "
            f"baseline {regression['baseline_ops']} ({detail})",
            file=out,
        )
    mismatched = [r.key for r in records if r.identical is False]
    for key in mismatched:
        print(f"MISMATCH {key}: reference arm produced different results", file=out)
    if regressions or mismatched:
        return 1
    print("perf gate ok", file=out)
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tango-bench",
        description="Micro-benchmark the scheduler/TCAM hot paths.",
    )
    add_bench_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    return run_bench(args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
