"""Vendor switch profiles.

Each profile reproduces the observable behaviour of one of the paper's
evaluation targets (Sections 2-3, Table 1, Figures 2-3):

* **Switch #1** -- TCAM (4K narrow / 2K wide entries) plus unbounded
  userspace software tables managed as a FIFO: the oldest-installed rules
  occupy TCAM, later rules overflow to the slow path.  Install latency is
  strongly priority-order dependent (Figure 3c).  Path delays: fast
  0.665 ms, slow ~3.7 ms, control ~7.5 ms (Figure 2b).
* **Switch #2** -- TCAM only, double-wide mode: 2560 entries regardless
  of match kind; adds beyond that are rejected.  Path delays: fast
  ~0.4 ms, control ~8 ms (Figure 2c).
* **Switch #3** -- TCAM only, adaptive width: 767 narrow or 369 wide
  entries.
* **OVS** -- unbounded software tables with traffic-driven kernel
  microflow caching; flat, priority-independent install costs.  Path
  delays: fast 3 ms, slow ~4.5 ms, control ~4.65 ms (Figure 2a).

Control-plane cost parameters are calibrated so that the paper's headline
ratios hold: descending-priority insertion of 2000 rules is ~45x slower
than same-priority insertion; random is ~12x slower than ascending;
modifying 5000 rules is ~6x faster than adding them (Figures 3b/3c).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.sim.clock import VirtualClock
from repro.sim.latency import (
    ConstantLatency,
    GaussianLatency,
    LatencyModel,
    ShiftedExponentialLatency,
)
from repro.sim.rng import SeededRng
from repro.switches.base import ControlCostModel, SimulatedSwitch
from repro.switches.ovs import OvsSwitch
from repro.tables.policies import FIFO, CachePolicy
from repro.tables.stack import TableLayer
from repro.tables.tcam import TcamGeometry, TcamMode


@dataclass(frozen=True)
class SwitchProfile:
    """A reusable recipe for building a simulated switch.

    Args:
        name: vendor label.
        layers: table layers, fastest first.
        policy: cache policy assigning rules to layers.
        layer_delays: data-path latency per layer.
        control_path_delay: punt-to-controller latency.
        cost_model: control-plane operation costs.
        is_ovs: build an :class:`OvsSwitch` (microflow caching) instead
            of the generic hardware model.
        true_layer_sizes: ground-truth bounded-layer sizes for narrow
            (L2-only/L3-only) entries; ``None`` marks an unbounded layer.
            Used by the evaluation to score inference accuracy.
    """

    name: str
    layers: Sequence[TableLayer]
    policy: CachePolicy
    layer_delays: Sequence[LatencyModel]
    control_path_delay: LatencyModel
    cost_model: ControlCostModel
    is_ovs: bool = False
    true_layer_sizes: Sequence[Optional[int]] = ()

    def build(
        self,
        clock: Optional[VirtualClock] = None,
        seed: int = 0,
        rng: Optional[SeededRng] = None,
    ) -> SimulatedSwitch:
        """Instantiate a fresh switch from this profile."""
        if self.is_ovs:
            return OvsSwitch(
                name=self.name,
                kernel_delay=self.layer_delays[0],
                userspace_delay=self.layer_delays[1],
                control_path_delay=self.control_path_delay,
                cost_model=self.cost_model,
                clock=clock,
                rng=rng,
                seed=seed,
            )
        return SimulatedSwitch(
            name=self.name,
            layers=list(self.layers),
            policy=self.policy,
            layer_delays=list(self.layer_delays),
            control_path_delay=self.control_path_delay,
            cost_model=self.cost_model,
            clock=clock,
            rng=rng,
            seed=seed,
        )

    def with_policy(self, policy: CachePolicy) -> "SwitchProfile":
        """A copy of this profile using a different cache policy."""
        return replace(self, policy=policy, name=f"{self.name}[{policy.describe()}]")


#: Hardware switch #1: FIFO software tables over a 4K/2K TCAM.
SWITCH_1 = SwitchProfile(
    name="switch1",
    layers=(
        TableLayer(
            "tcam",
            geometry=TcamGeometry(slot_units=4096, mode=TcamMode.ADAPTIVE, wide_cost=2.0),
        ),
        TableLayer("userspace", capacity=None),
    ),
    policy=FIFO,
    layer_delays=(
        GaussianLatency(mean=0.665, std=0.04),
        GaussianLatency(mean=3.7, std=0.25),
    ),
    control_path_delay=ShiftedExponentialLatency(minimum=6.5, tail_scale=1.0),
    cost_model=ControlCostModel(
        add_base_ms=0.32,
        shift_ms=0.0144,
        priority_group_ms=0.32,
        mod_ms=3.05,
        del_ms=2.4,
    ),
    true_layer_sizes=(4096, None),
)

#: Hardware switch #2: TCAM only, double-wide (2560 entries, any kind).
SWITCH_2 = SwitchProfile(
    name="switch2",
    layers=(
        TableLayer(
            "tcam",
            geometry=TcamGeometry(slot_units=5120, mode=TcamMode.DOUBLE_WIDE),
        ),
    ),
    policy=FIFO,
    layer_delays=(GaussianLatency(mean=0.4, std=0.03),),
    control_path_delay=ShiftedExponentialLatency(minimum=7.0, tail_scale=1.0),
    cost_model=ControlCostModel(
        add_base_ms=0.4,
        shift_ms=0.012,
        priority_group_ms=0.3,
        mod_ms=2.5,
        del_ms=2.0,
    ),
    true_layer_sizes=(2560,),
)

#: Hardware switch #3: TCAM only, adaptive width (767 narrow / 369 wide).
SWITCH_3 = SwitchProfile(
    name="switch3",
    layers=(
        TableLayer(
            "tcam",
            geometry=TcamGeometry(
                slot_units=767, mode=TcamMode.ADAPTIVE, wide_cost=767.0 / 369.0
            ),
        ),
    ),
    policy=FIFO,
    layer_delays=(GaussianLatency(mean=0.5, std=0.04),),
    control_path_delay=ShiftedExponentialLatency(minimum=7.0, tail_scale=1.0),
    cost_model=ControlCostModel(
        add_base_ms=0.5,
        shift_ms=0.08,
        priority_group_ms=0.4,
        mod_ms=3.5,
        del_ms=2.8,
    ),
    true_layer_sizes=(767,),
)

#: Open vSwitch: software tables, traffic-driven kernel microflow cache.
OVS_PROFILE = SwitchProfile(
    name="ovs",
    layers=(
        TableLayer("kernel", capacity=None),  # fast path (microflow hits)
        TableLayer("userspace", capacity=None),  # slow path
    ),
    policy=FIFO,
    layer_delays=(
        ConstantLatency(3.0),
        GaussianLatency(mean=4.5, std=0.35),
    ),
    control_path_delay=GaussianLatency(mean=4.65, std=0.15),
    cost_model=ControlCostModel(
        add_base_ms=0.05,
        shift_ms=0.0,
        priority_group_ms=0.0,
        mod_ms=0.045,
        del_ms=0.04,
        # Userspace classifier updates scan existing rules, so per-op cost
        # grows (mildly) with table occupancy.
        table_size_ms=0.0003,
    ),
    is_ovs=True,
    true_layer_sizes=(None, None),
)

VENDOR_PROFILES: Dict[str, SwitchProfile] = {
    profile.name: profile for profile in (OVS_PROFILE, SWITCH_1, SWITCH_2, SWITCH_3)
}


def make_cache_test_profile(
    policy: CachePolicy,
    layer_sizes: Sequence[Optional[int]] = (256, 512, None),
    name: Optional[str] = None,
    layer_means_ms: Sequence[float] = (0.5, 2.5, 4.8),
    jitter_std_ms: float = 0.05,
    cost_model: Optional[ControlCostModel] = None,
) -> SwitchProfile:
    """A synthetic multi-level switch for inference-accuracy experiments.

    Args:
        policy: cache policy under test.
        layer_sizes: capacity per layer; ``None`` marks an unbounded layer.
        name: profile label (derived from the policy if omitted).
        layer_means_ms: mean path delay per layer (must be well separated
            relative to ``jitter_std_ms`` for RTT clustering to work, as
            in the paper's Figure 5).
        jitter_std_ms: per-layer Gaussian jitter.
        cost_model: control-plane costs (cheap defaults if omitted).
    """
    if len(layer_sizes) != len(layer_means_ms):
        raise ValueError("layer_sizes and layer_means_ms must align")
    layers: List[TableLayer] = []
    delays: List[LatencyModel] = []
    for index, (size, mean) in enumerate(zip(layer_sizes, layer_means_ms)):
        layers.append(TableLayer(f"layer{index}", capacity=size))
        delays.append(GaussianLatency(mean=mean, std=jitter_std_ms))
    if cost_model is None:
        cost_model = ControlCostModel(
            add_base_ms=0.1,
            shift_ms=0.0,
            priority_group_ms=0.0,
            mod_ms=0.1,
            del_ms=0.1,
        )
    return SwitchProfile(
        name=name or f"cache-test[{policy.describe()}]",
        layers=tuple(layers),
        policy=policy,
        layer_delays=tuple(delays),
        control_path_delay=GaussianLatency(mean=8.0, std=0.3),
        cost_model=cost_model,
        true_layer_sizes=tuple(layer_sizes),
    )
