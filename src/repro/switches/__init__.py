"""Simulated OpenFlow switches.

Each simulated switch combines:

* a :class:`~repro.tables.stack.RankedTableStack` (the multi-level cache
  of Section 5.1),
* a control-plane cost model reproducing the diverse rule-install
  latencies of Section 3 (add vs. modify, priority-order sensitivity),
* per-layer data-path latency models (fast / slow / control path tiers).

Vendor profiles (:mod:`repro.switches.profiles`) configure these to match
the three proprietary hardware switches and Open vSwitch measured in the
paper.
"""

from repro.switches.base import (
    ControlCostModel,
    ForwardingResult,
    SimulatedSwitch,
    SwitchStats,
)
from repro.switches.ovs import OvsSwitch
from repro.switches.pipeline import PipelineSwitch, PipelineTableSpec
from repro.switches.profiles import (
    SwitchProfile,
    OVS_PROFILE,
    SWITCH_1,
    SWITCH_2,
    SWITCH_3,
    VENDOR_PROFILES,
    make_cache_test_profile,
)

__all__ = [
    "SimulatedSwitch",
    "SwitchStats",
    "ControlCostModel",
    "ForwardingResult",
    "OvsSwitch",
    "PipelineSwitch",
    "PipelineTableSpec",
    "SwitchProfile",
    "OVS_PROFILE",
    "SWITCH_1",
    "SWITCH_2",
    "SWITCH_3",
    "VENDOR_PROFILES",
    "make_cache_test_profile",
]
