"""The simulated switch: control plane and data plane.

Control plane.  Applying a flow_mod advances the shared virtual clock by
a modelled latency:

* ADD pays a base cost, plus a per-shifted-entry cost (TCAM entries must
  stay priority-sorted, see :mod:`repro.tables.tcam`), plus a small cost
  whenever the add opens a new priority group.  This reproduces the
  paper's Figure 3b/3c asymmetries: modify is ~6x faster than add at
  5000 rules, and descending-priority insertion is tens of times slower
  than ascending or same-priority insertion.
* MODIFY and DELETE pay flat costs (no entry shifting).

Data plane.  Forwarding a packet samples the latency model of the table
layer holding the matched rule (fast TCAM tier, slow software tier), or
the control-path model on a miss.  Matching a rule updates its use time
and traffic counter, which feeds the cache policy -- exactly the coupling
that makes naive probing disturb cache state (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.openflow.actions import ControllerAction
from repro.openflow.errors import FlowNotFoundError
from repro.openflow.match import Match, PacketFields
from repro.openflow.messages import (
    BarrierRequest,
    FlowMod,
    FlowModCommand,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
)
from repro.sim.clock import VirtualClock
from repro.sim.latency import LatencyModel
from repro.sim.rng import SeededRng
from repro.tables.policies import CachePolicy
from repro.tables.stack import RankedTableStack, TableLayer
from repro.tables.tcam import PriorityShiftModel


@dataclass(frozen=True)
class ControlCostModel:
    """Latency parameters for control-plane operations (milliseconds).

    Args:
        add_base_ms: fixed cost per ADD.
        shift_ms: cost per TCAM entry shifted by an ADD.
        priority_group_ms: extra cost when an ADD's priority differs from
            the previous ADD's priority (new priority group bookkeeping).
        mod_ms: flat cost per MODIFY.
        del_ms: flat cost per DELETE.
        table_size_ms: extra cost per installed rule, charged on every
            operation.  Models software classifiers whose update cost
            grows with table size (OVS userspace); zero for TCAM-backed
            switches whose update cost is dominated by entry shifting.
        batch_discount: multiplier applied to an operation's base cost
            when it has the same command type as the immediately
            preceding operation.  Models vendors that batch consecutive
            same-type updates into one hardware transaction (the paper's
            "batching effects that switches may have for rule
            installation", Section 5.2).  1.0 disables the effect.
        jitter_std_frac: relative std-dev of multiplicative Gaussian noise.
    """

    add_base_ms: float
    shift_ms: float
    priority_group_ms: float
    mod_ms: float
    del_ms: float
    table_size_ms: float = 0.0
    batch_discount: float = 1.0
    jitter_std_frac: float = 0.02

    def __post_init__(self) -> None:
        for name in (
            "add_base_ms",
            "shift_ms",
            "priority_group_ms",
            "mod_ms",
            "del_ms",
            "table_size_ms",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0 < self.batch_discount <= 1.0:
            raise ValueError("batch_discount must be in (0, 1]")


@dataclass(frozen=True)
class ForwardingResult:
    """Outcome of forwarding one packet through a switch.

    Args:
        delay_ms: data-path (or control-path) latency experienced.
        actions: the matched rule's actions (empty on a miss).
        matched: whether any installed rule matched.
        punted: the packet went to the controller (miss or explicit).
    """

    delay_ms: float
    actions: tuple
    matched: bool
    punted: bool


@dataclass
class SwitchStats:
    """Operation and forwarding counters."""

    adds: int = 0
    mods: int = 0
    dels: int = 0
    rejected_adds: int = 0
    packets_by_layer: List[int] = field(default_factory=list)
    packets_to_controller: int = 0
    total_shifts: int = 0


class SimulatedSwitch:
    """A diverse-implementation OpenFlow switch.

    Args:
        name: switch identifier.
        layers: table layers, fastest first.
        policy: cache-retention policy for layer placement.
        layer_delays: one data-path latency model per layer.
        control_path_delay: latency model for punt-to-controller.
        cost_model: control-plane operation costs.
        clock: shared virtual clock (created if omitted).
        rng: randomness source (created from ``seed`` if omitted).
        seed: seed used when ``rng`` is omitted.
        hard_limit: safety cap on installed rules.
    """

    def __init__(
        self,
        name: str,
        layers: List[TableLayer],
        policy: CachePolicy,
        layer_delays: List[LatencyModel],
        control_path_delay: LatencyModel,
        cost_model: ControlCostModel,
        clock: Optional[VirtualClock] = None,
        rng: Optional[SeededRng] = None,
        seed: int = 0,
        hard_limit: int = 200_000,
    ) -> None:
        if len(layers) != len(layer_delays):
            raise ValueError("need exactly one delay model per layer")
        self.name = name
        self.clock = clock if clock is not None else VirtualClock()
        self.rng = rng if rng is not None else SeededRng(seed).child(f"switch:{name}")
        self.tables = RankedTableStack(layers, policy, hard_limit=hard_limit)
        self.layer_delays = list(layer_delays)
        self.control_path_delay = control_path_delay
        self.cost_model = cost_model
        self.shift_model = PriorityShiftModel()
        self.stats = SwitchStats(packets_by_layer=[0] * len(layers))
        self._last_add_priority: Optional[int] = None
        self._last_command: Optional[FlowModCommand] = None

    # -- control plane -------------------------------------------------------
    def _jitter(self, latency_ms: float) -> float:
        std = self.cost_model.jitter_std_frac
        if std <= 0 or latency_ms <= 0:
            return latency_ms
        return max(0.0, latency_ms * self.rng.normal(1.0, std))

    def _advance(self, latency_ms: float) -> None:
        self.clock.advance(self._jitter(latency_ms))

    def apply_flow_mod(self, flow_mod: FlowMod) -> None:
        """Apply one flow_mod, advancing the clock by its modelled cost.

        Raises:
            TableFullError: ADD (or upserting MODIFY) with no room left.
            BadMatchError: flow_mod targets a pipeline table this
                single-table switch does not expose.
        """
        if flow_mod.table_id != 0:
            from repro.openflow.errors import BadMatchError

            raise BadMatchError(
                f"switch {self.name!r} exposes only table 0, "
                f"got table {flow_mod.table_id}"
            )
        if flow_mod.command is FlowModCommand.ADD:
            self._apply_add(flow_mod)
        elif flow_mod.command is FlowModCommand.MODIFY:
            self._apply_modify(flow_mod)
        elif flow_mod.command is FlowModCommand.DELETE:
            self._apply_delete(flow_mod)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown command {flow_mod.command!r}")

    def _table_size_cost_ms(self) -> float:
        return self.cost_model.table_size_ms * len(self.tables)

    def _batched_base(self, command: FlowModCommand, base_ms: float) -> float:
        """Base cost, discounted when extending a same-command streak."""
        discounted = (
            base_ms * self.cost_model.batch_discount
            if self._last_command is command
            else base_ms
        )
        self._last_command = command
        return discounted

    def _add_cost_ms(self, priority: int) -> float:
        cost = (
            self._batched_base(FlowModCommand.ADD, self.cost_model.add_base_ms)
            + self._table_size_cost_ms()
        )
        shifts = self.shift_model.shifts_for_add(priority)
        cost += self.cost_model.shift_ms * shifts
        if self._last_add_priority is None or priority != self._last_add_priority:
            cost += self.cost_model.priority_group_ms
        self.stats.total_shifts += shifts
        return cost

    def _apply_add(self, flow_mod: FlowMod) -> None:
        cost = self._add_cost_ms(flow_mod.priority)
        try:
            self.tables.insert(
                flow_mod.match, flow_mod.priority, flow_mod.actions, self.clock.now_ms
            )
        except Exception:
            self.stats.rejected_adds += 1
            # The switch still spent time discovering the table was full.
            self._advance(self.cost_model.add_base_ms)
            raise
        self.shift_model.record_add(flow_mod.priority)
        self._last_add_priority = flow_mod.priority
        self.stats.adds += 1
        self._advance(cost)

    def _apply_modify(self, flow_mod: FlowMod) -> None:
        entry = self.tables.lookup_exact(flow_mod.match)
        if entry is None:
            # Per OpenFlow semantics, MODIFY of a non-existent flow adds it.
            self._apply_add(flow_mod)
            return
        entry.actions = flow_mod.actions
        if flow_mod.priority != entry.priority:
            self.shift_model.record_delete(entry.priority)
            self.shift_model.record_add(flow_mod.priority)
            self.tables.update_priority(entry, flow_mod.priority)
        self.stats.mods += 1
        self._advance(
            self._batched_base(FlowModCommand.MODIFY, self.cost_model.mod_ms)
            + self._table_size_cost_ms()
        )

    def _apply_delete(self, flow_mod: FlowMod) -> None:
        removed = 0
        while True:
            entry = self.tables.lookup_exact(flow_mod.match)
            if entry is None:
                break
            self.tables.remove(entry)
            self.shift_model.record_delete(entry.priority)
            removed += 1
        if removed:
            self.stats.dels += removed
        # OpenFlow DELETE is idempotent; the switch still does the lookup.
        self._advance(
            self._batched_base(FlowModCommand.DELETE, self.cost_model.del_ms)
            + self._table_size_cost_ms()
        )

    def drain(self, barrier: BarrierRequest) -> None:
        """Finish pending work (the sequential model has none queued)."""

    # -- data plane ------------------------------------------------------------
    def forward_packet_detailed(self, packet: PacketFields) -> "ForwardingResult":
        """Forward one packet, reporting delay and the applied actions.

        Matching a rule updates its use time and traffic count *after* the
        forwarding tier is decided, mirroring real counter updates.
        """
        entry = self.tables.match_packet(packet)
        if entry is None:
            self.stats.packets_to_controller += 1
            return ForwardingResult(
                delay_ms=self.control_path_delay.sample(self.rng),
                actions=(),
                matched=False,
                punted=True,
            )
        punted = any(isinstance(a, ControllerAction) for a in entry.actions)
        if punted:
            delay = self.control_path_delay.sample(self.rng)
            self.stats.packets_to_controller += 1
        else:
            layer = self.tables.layer_of(entry)
            delay = self.layer_delays[layer].sample(self.rng)
            self.stats.packets_by_layer[layer] += 1
        self.tables.touch(entry, self.clock.now_ms)
        return ForwardingResult(
            delay_ms=delay, actions=entry.actions, matched=True, punted=punted
        )

    def forward_packet(self, packet: PacketFields) -> float:
        """Forward one packet; returns the data-path delay in ms."""
        return self.forward_packet_detailed(packet).delay_ms

    def layer_of_match(self, match: Match, priority: Optional[int] = None) -> int:
        """Current layer of the rule with this match (for test assertions)."""
        entry = self.tables.lookup_exact(match, priority)
        if entry is None:
            raise FlowNotFoundError(f"no entry for {match}")
        return self.tables.layer_of(entry)

    # -- statistics ---------------------------------------------------------------
    def collect_flow_stats(self, request: FlowStatsRequest) -> FlowStatsReply:
        entries = []
        for entry in self.tables.entries:
            if request.match is not None and request.match.key() != entry.match.key():
                continue
            entries.append(
                FlowStatsEntry(
                    match=entry.match,
                    priority=entry.priority,
                    packet_count=entry.traffic_count,
                    table_name=self.tables.layers[self.tables.layer_of(entry)].name,
                )
            )
        return FlowStatsReply(entries=tuple(entries))

    @property
    def num_flows(self) -> int:
        return len(self.tables)

    def reset_rules(self) -> None:
        """Remove all rules and reset per-run bookkeeping."""
        self.tables.clear()
        self.shift_model.clear()
        self._last_add_priority = None
        self._last_command = None

    def __repr__(self) -> str:
        return f"SimulatedSwitch(name={self.name!r}, flows={self.num_flows})"
