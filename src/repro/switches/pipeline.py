"""Multi-table OpenFlow pipeline switches.

Section 2 of the paper observes that even on switches advertising
OpenFlow 1.1+ pipelines, "the multiple tables in OpenFlow pipelines are
mostly implemented in switch software. Only entries belonging to a
single table are eligible to be chosen and pushed into TCAM."  The
conclusion lists inferring "multiple tables and their priorities" as
future work; this module provides the substrate and
:mod:`repro.core.pipeline_inference` the probing patterns.

A :class:`PipelineSwitch` exposes N pipeline tables.  Exactly one of
them (typically table 0) may be hardware-backed -- its resident rules
match at TCAM speed -- while the rest are software tables with slow-path
lookup latency.  Packets walk the pipeline from table 0, following
GotoTable instructions; a miss in any visited table punts to the
controller (the common table-miss default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.openflow.actions import ControllerAction, GotoTableAction
from repro.openflow.errors import BadMatchError
from repro.openflow.match import PacketFields
from repro.openflow.messages import (
    BarrierRequest,
    FlowMod,
    FlowModCommand,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
)
from repro.sim.clock import VirtualClock
from repro.sim.latency import LatencyModel
from repro.sim.rng import SeededRng
from repro.switches.base import ControlCostModel, ForwardingResult, SwitchStats
from repro.tables.policies import CachePolicy, FIFO
from repro.tables.stack import RankedTableStack, TableLayer
from repro.tables.tcam import PriorityShiftModel


@dataclass(frozen=True)
class PipelineTableSpec:
    """Configuration of one pipeline table.

    Args:
        capacity: entry capacity (None = unbounded software table).
        lookup_delay: per-lookup latency when a rule in this table
            matches (fast for the hardware-backed table).
        policy: cache policy (relevant only for capacity-layered tables).
    """

    capacity: Optional[int]
    lookup_delay: LatencyModel
    policy: CachePolicy = FIFO


class PipelineSwitch:
    """An OpenFlow 1.1+ switch with a multi-table pipeline.

    Args:
        name: switch identifier.
        tables: pipeline table specs, table 0 first.
        control_path_delay: punt-to-controller latency.
        cost_model: control-plane operation costs.  The entry-shift term
            applies only to the hardware table.
        hardware_table_id: which table is TCAM-backed (None = all
            software).
    """

    def __init__(
        self,
        name: str,
        tables: Sequence[PipelineTableSpec],
        control_path_delay: LatencyModel,
        cost_model: ControlCostModel,
        hardware_table_id: Optional[int] = 0,
        clock: Optional[VirtualClock] = None,
        rng: Optional[SeededRng] = None,
        seed: int = 0,
    ) -> None:
        if not tables:
            raise ValueError("a pipeline needs at least one table")
        if hardware_table_id is not None and not 0 <= hardware_table_id < len(tables):
            raise ValueError("hardware_table_id out of range")
        self.name = name
        self.clock = clock if clock is not None else VirtualClock()
        self.rng = rng if rng is not None else SeededRng(seed).child(f"pipe:{name}")
        self.specs = list(tables)
        self.hardware_table_id = hardware_table_id
        self.control_path_delay = control_path_delay
        self.cost_model = cost_model
        self.stacks: List[RankedTableStack] = [
            RankedTableStack([TableLayer(f"table{i}", capacity=spec.capacity)], spec.policy)
            for i, spec in enumerate(tables)
        ]
        self.shift_models: List[PriorityShiftModel] = [
            PriorityShiftModel() for _ in tables
        ]
        self.stats = SwitchStats(packets_by_layer=[0] * len(tables))
        self._last_add_priority: Dict[int, Optional[int]] = {
            i: None for i in range(len(tables))
        }

    @property
    def num_tables(self) -> int:
        return len(self.specs)

    @property
    def num_flows(self) -> int:
        return sum(len(stack) for stack in self.stacks)

    # -- control plane ---------------------------------------------------------
    def _jitter(self, latency_ms: float) -> float:
        std = self.cost_model.jitter_std_frac
        if std <= 0 or latency_ms <= 0:
            return latency_ms
        return max(0.0, latency_ms * self.rng.normal(1.0, std))

    def _validate_table(self, table_id: int) -> None:
        if not 0 <= table_id < len(self.specs):
            raise BadMatchError(
                f"switch {self.name!r} has {len(self.specs)} tables, "
                f"got table {table_id}"
            )

    def apply_flow_mod(self, flow_mod: FlowMod) -> None:
        """Apply one flow_mod to its pipeline table.

        Raises:
            BadMatchError: unknown table, or a GotoTable action pointing
                backwards or out of range.
            TableFullError: the target table cannot absorb an ADD.
        """
        self._validate_table(flow_mod.table_id)
        for action in flow_mod.actions:
            if isinstance(action, GotoTableAction):
                if action.table_id <= flow_mod.table_id:
                    raise BadMatchError("GotoTable must point to a later table")
                self._validate_table(action.table_id)

        table_id = flow_mod.table_id
        stack = self.stacks[table_id]
        if flow_mod.command is FlowModCommand.ADD:
            self._apply_add(table_id, flow_mod)
        elif flow_mod.command is FlowModCommand.MODIFY:
            entry = stack.lookup_exact(flow_mod.match)
            if entry is None:
                self._apply_add(table_id, flow_mod)
                return
            entry.actions = flow_mod.actions
            if flow_mod.priority != entry.priority:
                self.shift_models[table_id].record_delete(entry.priority)
                self.shift_models[table_id].record_add(flow_mod.priority)
                stack.update_priority(entry, flow_mod.priority)
            self.stats.mods += 1
            self.clock.advance(self._jitter(self.cost_model.mod_ms))
        elif flow_mod.command is FlowModCommand.DELETE:
            removed = 0
            while True:
                entry = stack.lookup_exact(flow_mod.match)
                if entry is None:
                    break
                stack.remove(entry)
                self.shift_models[table_id].record_delete(entry.priority)
                removed += 1
            self.stats.dels += removed
            self.clock.advance(self._jitter(self.cost_model.del_ms))

    def _apply_add(self, table_id: int, flow_mod: FlowMod) -> None:
        cost = self.cost_model.add_base_ms
        if table_id == self.hardware_table_id:
            shifts = self.shift_models[table_id].shifts_for_add(flow_mod.priority)
            cost += self.cost_model.shift_ms * shifts
            if (
                self._last_add_priority[table_id] is None
                or flow_mod.priority != self._last_add_priority[table_id]
            ):
                cost += self.cost_model.priority_group_ms
            self.stats.total_shifts += shifts
        try:
            self.stacks[table_id].insert(
                flow_mod.match, flow_mod.priority, flow_mod.actions, self.clock.now_ms
            )
        except Exception:
            self.stats.rejected_adds += 1
            self.clock.advance(self._jitter(self.cost_model.add_base_ms))
            raise
        self.shift_models[table_id].record_add(flow_mod.priority)
        self._last_add_priority[table_id] = flow_mod.priority
        self.stats.adds += 1
        self.clock.advance(self._jitter(cost))

    def drain(self, barrier: BarrierRequest) -> None:
        """Finish pending work (the sequential model has none queued)."""

    # -- data plane ----------------------------------------------------------------
    def forward_packet_detailed(self, packet: PacketFields) -> ForwardingResult:
        """Walk the pipeline from table 0, following GotoTable actions."""
        delay = 0.0
        table_id = 0
        while True:
            stack = self.stacks[table_id]
            entry = stack.match_packet(packet)
            if entry is None:
                # Table miss: punt (the OpenFlow default miss behaviour).
                self.stats.packets_to_controller += 1
                delay += self.control_path_delay.sample(self.rng)
                return ForwardingResult(
                    delay_ms=delay, actions=(), matched=False, punted=True
                )
            delay += self.specs[table_id].lookup_delay.sample(self.rng)
            self.stats.packets_by_layer[table_id] += 1
            stack.touch(entry, self.clock.now_ms)
            goto = next(
                (a for a in entry.actions if isinstance(a, GotoTableAction)), None
            )
            if goto is None:
                punted = any(isinstance(a, ControllerAction) for a in entry.actions)
                if punted:
                    self.stats.packets_to_controller += 1
                    delay += self.control_path_delay.sample(self.rng)
                return ForwardingResult(
                    delay_ms=delay,
                    actions=entry.actions,
                    matched=True,
                    punted=punted,
                )
            table_id = goto.table_id

    def forward_packet(self, packet: PacketFields) -> float:
        return self.forward_packet_detailed(packet).delay_ms

    # -- statistics --------------------------------------------------------------------
    def collect_flow_stats(self, request: FlowStatsRequest) -> FlowStatsReply:
        entries = []
        for table_id, stack in enumerate(self.stacks):
            for entry in stack.entries:
                if request.match is not None and request.match.key() != entry.match.key():
                    continue
                entries.append(
                    FlowStatsEntry(
                        match=entry.match,
                        priority=entry.priority,
                        packet_count=entry.traffic_count,
                        table_name=f"table{table_id}",
                    )
                )
        return FlowStatsReply(entries=tuple(entries))

    def reset_rules(self) -> None:
        for stack in self.stacks:
            stack.clear()
        for model in self.shift_models:
            model.clear()
        for table_id in self._last_add_priority:
            self._last_add_priority[table_id] = None

    def __repr__(self) -> str:
        return (
            f"PipelineSwitch(name={self.name!r}, tables={self.num_tables}, "
            f"flows={self.num_flows})"
        )
