"""Open vSwitch behavioural model.

OVS differs from the hardware switches in two ways the paper measures:

* *Traffic-driven kernel caching* (Figure 2a): a rule pushed to OVS lands
  in the userspace table; only when data-plane traffic matches it does an
  exact-match "microflow" get installed in the kernel table (a 1-to-N
  mapping: one wildcard rule can spawn many microflows).  The first
  packet of a flow therefore takes the slow path, subsequent packets the
  fast path.
* *Priority-insensitive installs* (Figure 3c): software tables need no
  entry shifting, so install latency is flat regardless of priority
  order, and is much lower than hardware TCAM installs for moderate rule
  counts.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.openflow.actions import ControllerAction
from repro.openflow.match import PacketFields
from repro.sim.clock import VirtualClock
from repro.sim.latency import LatencyModel
from repro.sim.rng import SeededRng
from repro.switches.base import ControlCostModel, ForwardingResult, SimulatedSwitch
from repro.tables.policies import FIFO
from repro.tables.stack import TableLayer


class OvsSwitch(SimulatedSwitch):
    """Open vSwitch: unbounded userspace table plus kernel microflow cache.

    Args:
        name: switch identifier.
        kernel_delay: fast-path latency (kernel exact-match hit).
        userspace_delay: slow-path latency (userspace lookup + kernel
            microflow installation).
        control_path_delay: miss-to-controller latency.
        cost_model: flat (priority-independent) install costs.
        kernel_capacity: microflow cache size (entries); oldest evicted.
    """

    def __init__(
        self,
        name: str,
        kernel_delay: LatencyModel,
        userspace_delay: LatencyModel,
        control_path_delay: LatencyModel,
        cost_model: ControlCostModel,
        clock: Optional[VirtualClock] = None,
        rng: Optional[SeededRng] = None,
        seed: int = 0,
        kernel_capacity: int = 200_000,
        hard_limit: int = 200_000,
    ) -> None:
        super().__init__(
            name=name,
            layers=[TableLayer("userspace", capacity=None)],
            policy=FIFO,
            layer_delays=[userspace_delay],
            control_path_delay=control_path_delay,
            cost_model=cost_model,
            clock=clock,
            rng=rng,
            seed=seed,
            hard_limit=hard_limit,
        )
        self.kernel_delay = kernel_delay
        self.kernel_capacity = kernel_capacity
        # Maps exact packet header tuples to the covering rule's entry id.
        self._kernel_cache: Dict[tuple, int] = {}
        self.kernel_hits = 0

    @staticmethod
    def _packet_key(packet: PacketFields) -> tuple:
        return (
            packet.eth_src,
            packet.eth_dst,
            packet.eth_type,
            packet.ip_src,
            packet.ip_dst,
            packet.ip_proto,
            packet.tp_src,
            packet.tp_dst,
        )

    def forward_packet_detailed(self, packet: PacketFields) -> ForwardingResult:
        key = self._packet_key(packet)
        entry_id = self._kernel_cache.get(key)
        if entry_id is not None:
            entry = self.tables._entries.get(entry_id)
            if entry is not None:
                self.kernel_hits += 1
                self.tables.touch(entry, self.clock.now_ms)
                return ForwardingResult(
                    delay_ms=self.kernel_delay.sample(self.rng),
                    actions=entry.actions,
                    matched=True,
                    punted=False,
                )
            # Covering rule was removed; invalidate the stale microflow.
            del self._kernel_cache[key]

        entry = self.tables.match_packet(packet)
        if entry is None:
            self.stats.packets_to_controller += 1
            return ForwardingResult(
                delay_ms=self.control_path_delay.sample(self.rng),
                actions=(),
                matched=False,
                punted=True,
            )
        if any(isinstance(a, ControllerAction) for a in entry.actions):
            self.stats.packets_to_controller += 1
            self.tables.touch(entry, self.clock.now_ms)
            return ForwardingResult(
                delay_ms=self.control_path_delay.sample(self.rng),
                actions=entry.actions,
                matched=True,
                punted=True,
            )

        # Slow path: userspace lookup installs a kernel microflow so the
        # flow's subsequent packets take the fast path (1-to-N mapping).
        self.stats.packets_by_layer[0] += 1
        self.tables.touch(entry, self.clock.now_ms)
        if len(self._kernel_cache) >= self.kernel_capacity:
            oldest = next(iter(self._kernel_cache))
            del self._kernel_cache[oldest]
        self._kernel_cache[key] = entry.entry_id
        return ForwardingResult(
            delay_ms=self.layer_delays[0].sample(self.rng),
            actions=entry.actions,
            matched=True,
            punted=False,
        )

    def reset_rules(self) -> None:
        super().reset_rules()
        self._kernel_cache.clear()
        self.kernel_hits = 0

    @property
    def kernel_cache_size(self) -> int:
        return len(self._kernel_cache)
