#!/usr/bin/env python3
"""Infer a multi-table pipeline's structure (the paper's future work).

The paper's conclusion: "we would like to expand the set of Tango
patterns to infer other switch capabilities such as multiple tables and
their priorities."  This example builds a three-table pipeline switch
where only one table is TCAM-backed (per Section 2, vendors push a
single table into hardware) and infers, from the outside:

* how many pipeline tables exist (install until the table id is rejected),
* each table's lookup latency (GotoTable chains of increasing depth),
* which table is the hardware one (the cheapest lookup),
* each table's capacity (fill to rejection).

Usage:
    python examples/pipeline_probe.py
"""

from __future__ import annotations

from repro.core.pipeline_inference import PipelineProber
from repro.openflow.channel import ControlChannel
from repro.sim.latency import ConstantLatency, GaussianLatency
from repro.sim.rng import SeededRng
from repro.switches.base import ControlCostModel
from repro.switches.pipeline import PipelineSwitch, PipelineTableSpec

# Hidden ground truth: table 1 is the TCAM-backed one.
HIDDEN_HARDWARE_TABLE = 1
HIDDEN_CAPACITIES = (512, 128, None)


def build_switch() -> PipelineSwitch:
    specs = []
    for table_id, capacity in enumerate(HIDDEN_CAPACITIES):
        if table_id == HIDDEN_HARDWARE_TABLE:
            delay = GaussianLatency(mean=0.4, std=0.03)
        else:
            delay = GaussianLatency(mean=2.8, std=0.2)
        specs.append(PipelineTableSpec(capacity=capacity, lookup_delay=delay))
    return PipelineSwitch(
        name="pipeline-switch",
        tables=specs,
        control_path_delay=ConstantLatency(8.0),
        cost_model=ControlCostModel(
            add_base_ms=0.4,
            shift_ms=0.01,
            priority_group_ms=0.2,
            mod_ms=1.5,
            del_ms=1.0,
        ),
        hardware_table_id=HIDDEN_HARDWARE_TABLE,
        seed=11,
    )


def main() -> None:
    switch = build_switch()
    channel = ControlChannel(switch, rng=SeededRng(11).child("chan"))
    prober = PipelineProber(channel, rng=SeededRng(11).child("probe"), size_cap=1024)

    print("Probing the pipeline ...")
    result = prober.probe()
    print(f"  tables found      : {result.num_tables} (actual: {len(HIDDEN_CAPACITIES)})")
    for table_id, lookup in enumerate(result.lookup_ms):
        marker = "  <- hardware" if table_id == result.hardware_table_id else ""
        print(f"  table {table_id} lookup    : {lookup:5.2f} ms{marker}")
    print(
        f"  hardware table    : {result.hardware_table_id} "
        f"(actual: {HIDDEN_HARDWARE_TABLE})"
    )
    for table_id, size in enumerate(result.table_sizes):
        actual = HIDDEN_CAPACITIES[table_id]
        print(
            f"  table {table_id} capacity  : "
            f"{'unbounded' if size is None else size} "
            f"(actual: {'unbounded' if actual is None else actual})"
        )

    correct = (
        result.num_tables == len(HIDDEN_CAPACITIES)
        and result.hardware_table_id == HIDDEN_HARDWARE_TABLE
        and tuple(result.table_sizes) == HIDDEN_CAPACITIES
    )
    print(f"\n{'SUCCESS' if correct else 'MISMATCH'}: pipeline structure "
          f"{'recovered' if correct else 'not recovered'} from probing alone.")


if __name__ == "__main__":
    main()
