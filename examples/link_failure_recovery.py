#!/usr/bin/env python3
"""Link-failure recovery on the paper's three-switch hardware testbed.

Builds the triangle testbed (two Vendor-#1 switches and one Vendor-#3
switch), installs 400 flows across the s1-s2 link, fails that link, and
compares how fast three schedulers push the rerouting rules:

* Dionysus (critical-path scheduling, diversity-oblivious),
* Tango with the rule-type pattern only,
* Tango with rule-type + priority patterns.

This is the paper's Figure 10 "LF" scenario, where priority-aware Tango
cuts installation time by ~70%.

Usage:
    python examples/link_failure_recovery.py
    python examples/link_failure_recovery.py --trace lf-trace
"""

from __future__ import annotations

import argparse

from repro.baselines import DionysusScheduler
from repro.core.patterns import make_type_only_pattern
from repro.core.scheduler import BasicTangoScheduler
from repro.netem import EmulatedNetwork, LinkFailureScenario, triangle_topology
from repro.obs import NULL_METRICS, NULL_TRACER, MetricsRegistry, Tracer
from repro.obs.export import prometheus_text, write_chrome_trace, write_jsonl
from repro.sim.rng import SeededRng
from repro.switches import SWITCH_1, SWITCH_3

FLOWS = 400


def build_network() -> EmulatedNetwork:
    network = EmulatedNetwork(
        triangle_topology(),
        default_profile=SWITCH_1,
        profiles={"s3": SWITCH_3},
        seed=3,
    )
    rng = SeededRng(5).child("flows")
    for _ in range(FLOWS):
        network.new_flow("s1", "s2", priority=rng.randint(1, 2000))
    network.preinstall_flow_rules()
    return network


def run(label, scheduler_factory, tracer, metrics) -> float:
    network = build_network()
    scenario = LinkFailureScenario(network, ("s1", "s2"))
    result = scenario.build_dag()
    tracer.event("schedule.arm", category="example", arm=label)
    executor = network.executor(metrics=metrics, tracer=tracer)
    outcome = scheduler_factory(executor, tracer, metrics).schedule(result.dag)
    print(
        f"  {label:<24}: {outcome.makespan_ms / 1000:6.2f} s "
        f"({result.adds} adds on the detour switch, {result.mods} mods at the ingress)"
    )
    return outcome.makespan_ms


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write PATH.jsonl, PATH.chrome.json, and PATH.prom telemetry",
    )
    args = parser.parse_args()
    tracer = Tracer() if args.trace else NULL_TRACER
    metrics = MetricsRegistry() if args.trace else NULL_METRICS

    print(f"Failing link s1-s2 with {FLOWS} flows crossing it ...")
    dionysus = run(
        "Dionysus",
        lambda ex, tr, mr: DionysusScheduler(ex, tracer=tr, metrics=mr),
        tracer,
        metrics,
    )
    run(
        "Tango (type only)",
        lambda ex, tr, mr: BasicTangoScheduler(
            ex, patterns=[make_type_only_pattern()], tracer=tr, metrics=mr
        ),
        tracer,
        metrics,
    )
    tango = run(
        "Tango (type + priority)",
        lambda ex, tr, mr: BasicTangoScheduler(ex, tracer=tr, metrics=mr),
        tracer,
        metrics,
    )
    print(
        f"\nTango's priority-sorted additions recover "
        f"{(dionysus - tango) / dionysus * 100:.0f}% faster than Dionysus "
        f"(the paper reports ~70%)."
    )
    if args.trace:
        events = tracer.events
        write_jsonl(events, args.trace + ".jsonl")
        write_chrome_trace(events, args.trace + ".chrome.json")
        with open(args.trace + ".prom", "w", encoding="utf-8") as handle:
            handle.write(prometheus_text(metrics))
        print(
            f"\ntrace: {len(events)} events -> {args.trace}.jsonl, "
            f"{args.trace}.chrome.json, {args.trace}.prom"
        )


if __name__ == "__main__":
    main()
