#!/usr/bin/env python3
"""Why the network-wide experiments install rules egress-first.

The paper's scenarios "ensure that the flow updates are conducted in
reverse order across the source-destination paths to ensure update
consistency" (Section 7.2, citing Reitblatt et al.).  This example makes
the property concrete: a flow's rules are installed along a three-switch
path in both orders while a consistency auditor traces a probe packet
after every single rule operation.

* Egress-first (reverse) order: the probe is punted at the ingress until
  the very last rule lands -- never black-holed.  Zero violations.
* Ingress-first (forward) order: the instant the ingress rule lands, the
  probe is forwarded into a switch that has no rule for it yet -- a
  transient black hole the auditor catches.

Usage:
    python examples/consistent_updates.py [--strict]

With ``--strict`` each DAG is statically verified by
``repro.analysis`` before scheduling (cycles, shadowed rules, orphan
barriers); ERROR diagnostics abort the run before any rule is issued.
"""

from __future__ import annotations

import argparse

from repro.analysis import analyze_dag
from repro.baselines import FifoOrderScheduler
from repro.core.requests import RequestDag
from repro.core.scheduler import BasicTangoScheduler
from repro.netem import (
    AuditingExecutor,
    EmulatedNetwork,
    Topology,
    probes_for_flows,
)
from repro.netem.consistency import add_reverse_path_dependencies
from repro.openflow.actions import OutputAction
from repro.openflow.messages import FlowModCommand
from repro.switches import OVS_PROFILE


def line_network() -> EmulatedNetwork:
    topology = Topology("line")
    for name in ("ingress", "core", "egress"):
        topology.add_switch(name)
    topology.add_link("ingress", "core")
    topology.add_link("core", "egress")
    return EmulatedNetwork(topology, default_profile=OVS_PROFILE, seed=1)


def build_install_dag(network, flow, reverse: bool) -> RequestDag:
    dag = RequestDag()
    chain = [
        dag.new_request(
            switch,
            FlowModCommand.ADD,
            flow.match(),
            priority=flow.priority,
            actions=(OutputAction(port=network.port_along_path(flow.path, switch)),),
        )
        for switch in flow.path
    ]
    if reverse:
        add_reverse_path_dependencies(dag, chain)
    return dag


def run(reverse: bool, strict: bool = False) -> None:
    network = line_network()
    flow = network.new_flow("ingress", "egress")
    dag = build_install_dag(network, flow, reverse=reverse)
    if strict:
        report = analyze_dag(dag)
        report.raise_on_errors()
        print(
            f"    static verification: {len(dag)} requests, "
            f"{len(report)} diagnostic(s)"
        )
    executor = AuditingExecutor(network, probes_for_flows(network, [flow]))
    if reverse:
        BasicTangoScheduler(executor, strict=strict).schedule(dag)
    else:
        FifoOrderScheduler(executor).schedule(dag)  # issues ingress first

    label = "egress-first (consistent)" if reverse else "ingress-first (naive)"
    report = executor.report
    print(f"{label:28s}: {report.probes_traced} probes traced, "
          f"{len(report.violations)} violations")
    for violation in report.violations:
        print(
            f"    transient black hole after request {violation.after_request_id}: "
            f"packet forwarded via {' -> '.join(violation.reached)} and then "
            f"{violation.outcome.value}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--strict",
        action="store_true",
        help="statically verify each DAG (repro.analysis) before scheduling",
    )
    args = parser.parse_args()
    print("Installing one flow over ingress -> core -> egress, auditing "
          "after every rule operation:\n")
    run(reverse=True, strict=args.strict)
    run(reverse=False, strict=args.strict)
    print(
        "\nThe reverse (egress-first) ordering used throughout the paper's "
        "evaluation never forwards a packet into a rule-less switch."
    )


if __name__ == "__main__":
    main()
