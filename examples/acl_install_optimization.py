#!/usr/bin/env python3
"""Install a ClassBench-style ACL on a hardware switch, four ways.

This is the paper's single-switch evaluation (Figures 8/9): an
access-control rule set with overlap dependencies is installed under the
cross product of

* priority assignment: topological (minimum distinct priorities) vs. R
  (one unique priority per rule), and
* installation order: Tango's probing-derived optimal order vs. random.

On hardware, the topological + Tango combination wins by a wide margin,
because same-priority additions avoid TCAM entry shifting entirely.

Usage:
    python examples/acl_install_optimization.py
"""

from __future__ import annotations

from repro.baselines import RandomOrderScheduler
from repro.core.priorities import (
    assign_r_priorities,
    assign_topological_priorities,
    distinct_priority_count,
)
from repro.core.scheduler import BasicTangoScheduler, NetworkExecutor
from repro.openflow.channel import ControlChannel
from repro.openflow.messages import FlowModCommand
from repro.core.requests import RequestDag
from repro.switches import SWITCH_1
from repro.workloads import classbench_preset


def build_dag(ruleset, priorities) -> RequestDag:
    dag = RequestDag()
    requests = {}
    for index, rule in enumerate(ruleset.rules):
        requests[index] = dag.new_request(
            "hw", FlowModCommand.ADD, rule, priority=priorities[index]
        )
    for u, v in ruleset.dependencies.edges():
        dag.add_dependency(requests[u], requests[v])
    return dag


def executor() -> NetworkExecutor:
    switch = SWITCH_1.build(seed=11)
    switch.name = "hw"
    return NetworkExecutor({"hw": ControlChannel(switch)})


def main() -> None:
    ruleset = classbench_preset(1)
    topo = assign_topological_priorities(ruleset.dependencies)
    r = assign_r_priorities(ruleset.dependencies)
    print(
        f"ACL {ruleset.name}: {len(ruleset)} rules, dependency depth {ruleset.depth}, "
        f"{distinct_priority_count(topo)} topological priorities, "
        f"{distinct_priority_count(r)} R priorities\n"
    )

    arms = {
        "Topo priorities + Tango order": (topo, lambda ex: BasicTangoScheduler(ex)),
        "R priorities + Tango order": (r, lambda ex: BasicTangoScheduler(ex)),
        "R priorities + random order": (r, lambda ex: RandomOrderScheduler(ex, seed=1)),
        "Topo priorities + random order": (topo, lambda ex: RandomOrderScheduler(ex, seed=1)),
    }
    results = {}
    for label, (priorities, factory) in arms.items():
        outcome = factory(executor()).schedule(build_dag(ruleset, priorities))
        results[label] = outcome.makespan_ms
        print(f"  {label:<32}: {outcome.makespan_ms / 1000:6.2f} s")

    best = min(results, key=results.get)
    worst = max(results, key=results.get)
    reduction = (results[worst] - results[best]) / results[worst] * 100
    print(f"\nBest arm: {best} (-{reduction:.0f}% vs {worst}; the paper reports 80-89%).")


if __name__ == "__main__":
    main()
