#!/usr/bin/env python3
"""Infer everything about an undocumented switch.

A "mystery" switch is built with a hidden configuration (table sizes and
cache-replacement policy).  Tango's probing patterns recover the
configuration from black-box measurements alone:

* Algorithm 1 infers the number of flow-table layers and their sizes;
* Algorithm 2 infers the cache-replacement policy as a lexicographic
  ordering of (insertion time, use time, traffic count, priority).

Usage:
    python examples/infer_unknown_switch.py
"""

from __future__ import annotations

from repro.core.inference import SwitchInferenceEngine
from repro.switches import make_cache_test_profile
from repro.tables.policies import TRAFFIC_THEN_PRIORITY

# The ground truth -- in a real deployment nobody tells you this.
HIDDEN_LAYERS = (96, 192, None)
HIDDEN_POLICY = TRAFFIC_THEN_PRIORITY


def main() -> None:
    profile = make_cache_test_profile(
        HIDDEN_POLICY,
        layer_sizes=HIDDEN_LAYERS,
        layer_means_ms=(0.5, 2.5, 4.8),
        name="mystery-switch",
    )
    engine = SwitchInferenceEngine(
        profile, seed=7, size_probe_max_rules=1024, latency_batch_sizes=(50, 150, 300)
    )

    print("Running the Tango size probe (Algorithm 1) ...")
    model = engine.infer(include_policy=True)
    size_probe = model.size_probe
    print(f"  layers found        : {size_probe.num_layers}")
    for index, layer in enumerate(size_probe.layers):
        size = "unbounded" if layer.estimated_size is None else layer.estimated_size
        truth = HIDDEN_LAYERS[index] if index < len(HIDDEN_LAYERS) else "?"
        print(
            f"  layer {index}: mean RTT {layer.mean_rtt_ms:5.2f} ms, "
            f"size {size} (actual: {truth if truth is not None else 'unbounded'})"
        )

    print("\nRunning the Tango policy probe (Algorithm 2) ...")
    policy = model.policy_probe
    inferred = " > ".join(
        f"{attribute.value}({'increasing' if direction.value > 0 else 'decreasing'})"
        for attribute, direction in policy.terms
    )
    truth = " > ".join(
        f"{attribute.value}({'increasing' if direction.value > 0 else 'decreasing'})"
        for attribute, direction in HIDDEN_POLICY.terms
    )
    print(f"  inferred policy : {inferred}")
    print(f"  actual policy   : {truth}")
    print(f"  probing rounds  : {policy.rounds}")

    matches = tuple(policy.terms[: len(HIDDEN_POLICY.terms)]) == HIDDEN_POLICY.terms
    print(f"\n{'SUCCESS' if matches else 'MISMATCH'}: the probe "
          f"{'recovered' if matches else 'did not recover'} the hidden configuration.")


if __name__ == "__main__":
    main()
