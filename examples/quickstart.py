#!/usr/bin/env python3
"""Quickstart: probe a switch, then schedule rules with what you learned.

Runs in a few seconds:

1. register a simulated hardware switch (vendor profile "Switch #2"),
2. let Tango infer its flow-table size and operation latency curves,
3. install 500 rules twice -- once in a naive random order, once through
   the Tango scheduler -- and compare installation times.

Usage:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro.baselines import RandomOrderScheduler
from repro.core import NetworkExecutor, RequestDag, Tango
from repro.core.probing import probe_match
from repro.openflow.messages import FlowModCommand
from repro.sim.rng import SeededRng
from repro.switches import SWITCH_2


def build_dag(location: str, n_rules: int, seed: int) -> RequestDag:
    """An independent batch of rule additions with random priorities."""
    rng = SeededRng(seed).child("quickstart")
    dag = RequestDag()
    priorities = rng.sample(list(range(1, 8 * n_rules)), n_rules)
    for index in range(n_rules):
        dag.new_request(
            location,
            FlowModCommand.ADD,
            probe_match(index),
            priority=priorities[index],
        )
    return dag


def main() -> None:
    tango = Tango(seed=42)
    name = tango.register_profile(SWITCH_2)

    print(f"Probing switch {name!r} ...")
    model = tango.infer(name, include_policy=False, latency_batch_sizes=(100, 400, 900))
    print(f"  inferred flow-table layers : {model.layer_sizes}")
    for (op, pattern), curve in sorted(
        model.latency_curves.items(), key=lambda kv: (kv[0][0].value, kv[0][1].value)
    ):
        print(
            f"  latency curve {op.value:>3} / {pattern.value:<10}: "
            f"t(n) = {curve.linear_ms:.3f}*n + {curve.quadratic_ms:.5f}*n^2  ms"
        )

    n_rules = 500
    naive = RandomOrderScheduler(NetworkExecutor({name: tango.channel(name)}), seed=7)
    naive_result = naive.schedule(build_dag(name, n_rules, seed=1))
    # Start the second run from an empty flow table.
    tango.switch(name).reset_rules()
    tango_result = tango.schedule(build_dag(name, n_rules, seed=1))

    print(f"\nInstalling {n_rules} rules with random priorities:")
    print(f"  random issue order : {naive_result.makespan_ms / 1000:.2f} s")
    print(f"  Tango scheduler    : {tango_result.makespan_ms / 1000:.2f} s")
    speedup = naive_result.makespan_ms / tango_result.makespan_ms
    print(f"  speedup            : {speedup:.1f}x (the paper reports up to 12x)")


if __name__ == "__main__":
    main()
