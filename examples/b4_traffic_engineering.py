#!/usr/bin/env python3
"""Traffic engineering on Google's B4 backbone over Open vSwitch.

The paper's Mininet experiment (Figure 12): a traffic-matrix change on
the 12-node B4 topology is translated -- via max-min fair allocation --
into thousands of switch requests (new flows installed egress-first,
removed flows drained ingress-first, re-allocated flows modified along
their paths), and the resulting request DAG is scheduled by Dionysus
and by Tango.

Usage:
    python examples/b4_traffic_engineering.py
"""

from __future__ import annotations

from repro.baselines import DionysusScheduler
from repro.core.scheduler import BasicTangoScheduler
from repro.netem import (
    EmulatedNetwork,
    TrafficEngineeringScenario,
    b4_topology,
    max_min_fair_allocation,
)
from repro.sim.rng import SeededRng
from repro.switches import OVS_PROFILE
from repro.workloads import uniform_traffic_matrix


def build_scenario(seed: int):
    network = EmulatedNetwork(b4_topology(), default_profile=OVS_PROFILE, seed=seed)
    rng = SeededRng(seed).child("tm")
    nodes = network.topology.switches
    before = uniform_traffic_matrix(nodes, total_demand=300.0, rng=rng, sparsity=0.3)
    after = uniform_traffic_matrix(nodes, total_demand=360.0, rng=rng, sparsity=0.3)
    scenario = TrafficEngineeringScenario(network, seed=seed + 1)
    result = scenario.from_traffic_matrices(before, after, flows_per_pair=12)
    return network, result


def main() -> None:
    network, result = build_scenario(seed=7)
    print(
        f"B4 topology: {len(network.topology.switches)} sites, "
        f"{len(network.topology.links)} links"
    )
    print(
        f"Traffic-matrix change produced {result.total} switch requests "
        f"({result.adds} add / {result.mods} mod / {result.dels} del)\n"
    )

    allocation = max_min_fair_allocation(
        network.topology, list(network.flows.values())
    )
    satisfied = sum(
        1
        for flow in network.flows.values()
        if allocation.get(flow.flow_id, 0.0) >= flow.demand - 1e-9
    )
    print(
        f"Max-min fair allocation: {satisfied}/{len(network.flows)} flows fully "
        f"satisfied, {sum(allocation.values()):.0f} Gbps allocated in total\n"
    )

    dionysus = DionysusScheduler(network.executor()).schedule(result.dag)
    network, result = build_scenario(seed=7)
    tango = BasicTangoScheduler(network.executor()).schedule(result.dag)

    print(f"  Dionysus : {dionysus.makespan_ms / 1000:6.2f} s")
    print(f"  Tango    : {tango.makespan_ms / 1000:6.2f} s")
    gain = (dionysus.makespan_ms - tango.makespan_ms) / dionysus.makespan_ms * 100
    print(
        f"\nTango improves on Dionysus by {gain:.0f}% "
        f"(the paper reports ~8% -- OVS is priority-insensitive, so only the "
        f"rule-type pattern contributes)."
    )


if __name__ == "__main__":
    main()
